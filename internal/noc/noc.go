// Package noc is a flit-level simulator of the memory-centric network —
// the role Booksim plays in the paper's methodology (Table III). Routers
// forward flits over class-weighted links (full 30 B/cycle, narrow
// 10 B/cycle at the 1 GHz router clock) with per-hop SerDes latency,
// finite input buffers, and round-robin output arbitration. Traffic
// drivers express the paper's two patterns: pipelined ring collectives and
// cluster-local all-to-all tile transfer.
//
// The simulator transfers flits independently (per-flit virtual
// cut-through) rather than reserving channels per packet; at the message
// sizes and loads evaluated this matches wormhole throughput while keeping
// the model deadlock-free in combination with always-draining ejection.
package noc

import (
	"fmt"

	"mptwino/internal/fault"
	"mptwino/internal/parallel"
	"mptwino/internal/telemetry"
	"mptwino/internal/topology"
)

// Config sets the physical parameters of the simulated fabric.
type Config struct {
	FlitBytes    int // flit payload; 10 B makes narrow links exactly 1 flit/cycle
	SerDesCycles int // per-hop serialization+deserialization (paper: 5 ns)
	HostExtra    int // additional cycles on Host-class links (through-host hop)
	BufferFlits  int // input-queue capacity per port, in flits
	ClockHz      float64

	// RandomFirstHop enables randomized minimal routing at injection: a
	// message departs through a uniformly chosen minimal first hop instead
	// of the deterministic table entry, spreading all-to-all load across
	// path-diverse fabrics like the FBFLY (where every 2-hop pair has an
	// XY and a YX path).
	RandomFirstHop bool
	// Seed drives the first-hop randomization (deterministic per seed).
	Seed uint64

	// ShardWorkers shards the per-cycle link and router updates across
	// this many goroutines with a barrier per stage (0 or 1 = sequential).
	// Flit-level results are bit-identical for every value — see
	// parallel.go for the partitioning argument and the determinism test
	// for the cross-check.
	ShardWorkers int

	// RetryTimeout is the number of cycles the retransmit protocol waits
	// after a flit drop before re-sending a message's missing bytes from
	// the source. MaxRetries bounds how many retransmissions one message
	// may consume before it is declared lost (and the run errors out).
	// Both only matter under an attached fault plan.
	RetryTimeout int64
	MaxRetries   int
}

// DefaultConfig returns the Table III configuration.
func DefaultConfig() Config {
	return Config{
		FlitBytes:    10,
		SerDesCycles: 5,
		HostExtra:    5,
		BufferFlits:  16,
		ClockHz:      1e9,
		RetryTimeout: 512,
		MaxRetries:   8,
	}
}

// Validate rejects configurations that would divide by zero or livelock the
// simulator (zero flit size stalls every transfer; zero buffering blocks
// every hop; a non-positive clock breaks all time conversion).
func (c Config) Validate() error {
	if c.FlitBytes <= 0 {
		return fmt.Errorf("noc: FlitBytes must be positive, got %d (flits would carry no payload)", c.FlitBytes)
	}
	if c.BufferFlits <= 0 {
		return fmt.Errorf("noc: BufferFlits must be positive, got %d (every hop would block forever)", c.BufferFlits)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("noc: ClockHz must be positive, got %v", c.ClockHz)
	}
	if c.SerDesCycles < 0 {
		return fmt.Errorf("noc: SerDesCycles must be non-negative, got %d", c.SerDesCycles)
	}
	if c.HostExtra < 0 {
		return fmt.Errorf("noc: HostExtra must be non-negative, got %d", c.HostExtra)
	}
	if c.RetryTimeout < 0 {
		return fmt.Errorf("noc: RetryTimeout must be non-negative, got %d", c.RetryTimeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("noc: MaxRetries must be non-negative, got %d", c.MaxRetries)
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("noc: ShardWorkers must be non-negative, got %d", c.ShardWorkers)
	}
	return nil
}

// Message is one network transfer between two workers.
type Message struct {
	ID    int
	Src   int
	Dst   int
	Bytes int
	// Tag carries driver-private state (e.g. chunk index / step).
	Tag int

	// Retries counts how many timeout-driven retransmissions this message
	// consumed recovering from dropped flits.
	Retries int

	InjectedAt    int64
	DeliveredAt   int64
	receivedBytes int
	delivered     bool

	// retransmit-protocol state
	droppedBytes int   // bytes lost to flit drops, awaiting retransmission
	retryAt      int64 // cycle at which the retransmit timer fires
	queuedRetry  bool  // already on the retry queue
	lost         bool
	lossWhy      string
}

type flit struct {
	msg   *Message
	bytes int
}

// inFlight is a flit traversing a link's SerDes pipeline.
type inFlight struct {
	f        flit
	arriveAt int64
}

// port is one input queue of a router.
type port struct {
	queue []flit
}

// link is a directed physical channel.
type link struct {
	from, to    int
	class       topology.LinkClass
	flitsPerCyc int
	latency     int64
	dst         *port // the link's input queue at `to` (one feeder per port)
	pipeline    []inFlight
	// stats
	busyFlits int64

	// fault state
	faults []fault.LinkFault // active plan entries for this link
	credit float64           // fractional-bandwidth accumulator while degraded
	dead   bool              // endpoint module failed; link is gone

	// profileScale derates the link for the capability model: the minimum
	// of the endpoints' ModuleProfile link scales (1 = nominal). Unlike
	// fault windows it is static for a run, so it is resolved once at
	// AttachFaults and folded into the same fractional-credit budget the
	// bandwidth faults use.
	profileScale float64
}

// Network is the simulation instance.
type Network struct {
	Cfg    Config
	G      *topology.Graph
	Routes *topology.RouteTable

	links    []*link
	outLinks [][]int         // node -> indices into links
	linkIdx  map[[2]int]int  // (from,to) -> link index
	inPorts  []map[int]*port // node -> from-node -> queue
	// inOrder lists each node's input ports in link-construction order —
	// the deterministic iteration the cycle loop uses instead of map
	// ranging, so ejection and fault-drain orders are reproducible.
	inOrder [][]*port
	// injectQ is per outgoing link, not per node: locally injected flits
	// queue at the output port their route departs through, so messages
	// bound for different links never head-of-line block each other.
	injectQ [][]flit // indexed like links
	rr      []int    // round-robin cursor per link

	now       int64
	messages  []*Message
	pendingID int
	rngState  uint64

	// fault machinery
	plan            *fault.Plan
	failed          []bool // per-node permanent-failure flag
	ownsGraph       bool   // G was cloned before mutating it
	pendingFailures []fault.NodeFault
	retryQ          []*Message // messages with dropped bytes awaiting timeout
	lost            []*Message // messages declared undeliverable

	// sharded-stepping machinery (parallel.go): the shard plan always
	// exists (a single full-range shard when sequential); the pool only
	// when ShardWorkers > 1.
	pool      *parallel.Pool
	nodeShard [][2]int
	linkShard [][2]int
	scratch   []stepScratch

	// Stats
	BytesByClass map[topology.LinkClass]int64
	FlitHops     int64
	DroppedFlits int64
	Retransmits  int64

	// telemetry handles (zero value = disabled; see Instrument)
	tel instruments
}

// New builds a network simulator over graph g. It panics on an invalid
// config (see Config.Validate) — a zero flit size or buffer capacity would
// otherwise livelock the simulator far from the cause.
func New(g *topology.Graph, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{
		Cfg:          cfg,
		G:            g,
		Routes:       topology.BuildRoutes(g),
		outLinks:     make([][]int, g.N),
		linkIdx:      make(map[[2]int]int),
		inPorts:      make([]map[int]*port, g.N),
		inOrder:      make([][]*port, g.N),
		BytesByClass: make(map[topology.LinkClass]int64),
	}
	for v := 0; v < g.N; v++ {
		n.inPorts[v] = make(map[int]*port)
	}
	for from := 0; from < g.N; from++ {
		for _, e := range g.Adj[from] {
			l := &link{
				from:         from,
				to:           e.To,
				class:        e.Class,
				flitsPerCyc:  int(e.Class.Bandwidth() / cfg.ClockHz / float64(cfg.FlitBytes)),
				latency:      int64(cfg.SerDesCycles),
				profileScale: 1,
			}
			if l.flitsPerCyc < 1 {
				l.flitsPerCyc = 1
			}
			if e.Class == topology.Host {
				l.latency += int64(cfg.HostExtra)
			}
			n.linkIdx[[2]int{from, e.To}] = len(n.links)
			n.outLinks[from] = append(n.outLinks[from], len(n.links))
			n.links = append(n.links, l)
			p := &port{}
			l.dst = p
			n.inPorts[e.To][from] = p
			n.inOrder[e.To] = append(n.inOrder[e.To], p)
		}
	}
	n.rr = make([]int, len(n.links))
	n.injectQ = make([][]flit, len(n.links))
	n.rngState = cfg.Seed ^ 0x632be59bd9b4e019
	n.failed = make([]bool, g.N)
	n.buildShards()
	return n
}

// AttachFaults installs a deterministic fault plan: links cache their own
// fault entries for per-cycle consultation, scheduled module failures are
// queued for execution at their cycle, and module capability profiles
// derate each link to the slower endpoint's SerDes scale. Must be called
// before Run/Step.
func (n *Network) AttachFaults(p *fault.Plan) error {
	if err := p.Validate(n.G.N); err != nil {
		return err
	}
	n.plan = p
	for _, l := range n.links {
		l.faults = p.LinkFaultsFor(l.from, l.to)
		l.profileScale = p.ProfileFor(l.from).EffectiveLinkScale()
		if s := p.ProfileFor(l.to).EffectiveLinkScale(); s < l.profileScale {
			l.profileScale = s
		}
	}
	n.pendingFailures = p.NodeFailuresSorted()
	return nil
}

// FailNode permanently removes module v from the fabric mid-simulation: its
// links die, flits in its queues and on its links are dropped (messages
// to/from v become lost; transit messages schedule a retransmission), the
// topology loses the node, and routing tables are recomputed over the
// survivors. Traffic stranded by a resulting partition is declared lost so
// Run reports an error instead of deadlocking.
func (n *Network) FailNode(v int) {
	if v < 0 || v >= len(n.failed) || n.failed[v] {
		return
	}
	n.failed[v] = true
	n.tel.failures.Inc()
	if n.tel.tracer.Enabled() {
		n.tel.tracer.Instant(telemetry.PIDNoC, v, "node_failure", "noc.fault", n.now,
			map[string]any{"node": v})
	}
	// Work on a private copy of the topology the first time it mutates, so
	// callers' graphs (shared with co-simulators and figures) stay pristine.
	if !n.ownsGraph {
		n.G = n.G.Clone()
		n.ownsGraph = true
	}
	for li, l := range n.links {
		if l.from != v && l.to != v {
			continue
		}
		l.dead = true
		for _, inf := range l.pipeline {
			n.dropForFailure(inf.f, v)
		}
		l.pipeline = nil
		for _, f := range n.injectQ[li] {
			n.dropForFailure(f, v)
		}
		n.injectQ[li] = nil
	}
	for _, p := range n.inOrder[v] {
		for _, f := range p.queue {
			n.dropForFailure(f, v)
		}
		p.queue = nil
	}
	n.G.RemoveNode(v)
	n.Routes = topology.BuildRoutes(n.G)
	n.sweepUnroutable()
}

// dropForFailure handles one flit destroyed by module v's failure.
func (n *Network) dropForFailure(f flit, v int) {
	m := f.msg
	if m.delivered || m.lost {
		return
	}
	n.DroppedFlits++
	n.tel.dropped.Inc()
	if m.Src == v || m.Dst == v {
		n.markLost(m, fmt.Sprintf("module %d failed", v))
		return
	}
	n.scheduleRetry(m, f.bytes)
}

// sweepUnroutable removes flits whose current node no longer has a route to
// their destination (the fabric partitioned), declaring their messages
// lost. Without the sweep such flits would head-of-line block a queue
// forever and the run would only fail at maxCycles.
func (n *Network) sweepUnroutable() {
	drain := func(q []flit, at int) []flit {
		kept := q[:0]
		for _, f := range q {
			if !f.msg.delivered && !f.msg.lost && n.Routes.NextHop(at, f.msg.Dst) < 0 && f.msg.Dst != at {
				n.markLost(f.msg, fmt.Sprintf("no route %d->%d after failure", at, f.msg.Dst))
				continue
			}
			kept = append(kept, f)
		}
		return kept
	}
	for v, ports := range n.inOrder {
		for _, p := range ports {
			p.queue = drain(p.queue, v)
		}
	}
	for li, l := range n.links {
		if l.dead {
			continue
		}
		kept := l.pipeline[:0]
		for _, inf := range l.pipeline {
			if !inf.f.msg.delivered && !inf.f.msg.lost && n.Routes.NextHop(l.to, inf.f.msg.Dst) < 0 && inf.f.msg.Dst != l.to {
				n.markLost(inf.f.msg, fmt.Sprintf("no route %d->%d after failure", l.to, inf.f.msg.Dst))
				continue
			}
			kept = append(kept, inf)
		}
		l.pipeline = kept
		// Injection queues are committed to l.to; check the route onward.
		n.injectQ[li] = drain(n.injectQ[li], l.to)
	}
}

// scheduleRetry records dropped bytes of a message and arms (or re-arms)
// its retransmit timer.
func (n *Network) scheduleRetry(m *Message, bytes int) {
	if m.lost || m.delivered {
		return
	}
	m.droppedBytes += bytes
	m.retryAt = n.now + n.Cfg.RetryTimeout
	if !m.queuedRetry {
		m.queuedRetry = true
		n.retryQ = append(n.retryQ, m)
	}
}

// markLost declares a message undeliverable; Run surfaces this as an error.
func (n *Network) markLost(m *Message, why string) {
	if m.lost {
		return
	}
	m.lost = true
	m.lossWhy = why
	m.droppedBytes = 0
	n.lost = append(n.lost, m)
	n.tel.lost.Inc()
	if n.tel.tracer.Enabled() {
		n.tel.tracer.Instant(telemetry.PIDNoC, m.Src, "message_lost", "noc.fault", n.now,
			map[string]any{"id": m.ID, "dst": m.Dst, "why": why})
	}
}

// processRetries fires due retransmit timers: a message with dropped bytes
// re-injects exactly the missing payload from its source, consuming one
// retry; exhausted messages are declared lost.
func (n *Network) processRetries() {
	if len(n.retryQ) == 0 {
		return
	}
	kept := n.retryQ[:0]
	for _, m := range n.retryQ {
		if m.lost || m.delivered {
			m.queuedRetry = false
			continue
		}
		if n.now < m.retryAt {
			kept = append(kept, m)
			continue
		}
		m.queuedRetry = false
		if m.Retries >= n.Cfg.MaxRetries {
			n.markLost(m, fmt.Sprintf("retries exhausted (%d)", m.Retries))
			continue
		}
		if n.failed[m.Src] {
			n.markLost(m, fmt.Sprintf("source module %d failed", m.Src))
			continue
		}
		hop := n.firstHop(m.Src, m.Dst)
		if hop < 0 {
			n.markLost(m, fmt.Sprintf("no route %d->%d for retransmission", m.Src, m.Dst))
			continue
		}
		m.Retries++
		n.Retransmits++
		n.tel.retransmits.Inc()
		if n.tel.tracer.Enabled() {
			n.tel.tracer.Instant(telemetry.PIDNoC, m.Src, "retransmit", "noc.fault", n.now,
				map[string]any{"id": m.ID, "dst": m.Dst, "bytes": m.droppedBytes, "retry": m.Retries})
		}
		n.enqueueFlits(m, m.droppedBytes, hop)
		m.droppedBytes = 0
	}
	n.retryQ = kept
}

// enqueueFlits splits bytes of message m into flits on the injection queue
// of the link toward hop.
func (n *Network) enqueueFlits(m *Message, bytes, hop int) {
	li := n.linkIdx[[2]int{m.Src, hop}]
	for bytes > 0 {
		b := n.Cfg.FlitBytes
		if bytes < b {
			b = bytes
		}
		n.injectQ[li] = append(n.injectQ[li], flit{msg: m, bytes: b})
		bytes -= b
	}
}

// rand32 advances the network's deterministic RNG (SplitMix64).
func (n *Network) rand32() uint32 {
	n.rngState += 0x9e3779b97f4a7c15
	z := n.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return uint32(z ^ (z >> 31))
}

// firstHop picks the message's departure neighbor: the deterministic
// minimal next hop, or — with RandomFirstHop — a uniform choice among all
// minimal neighbors.
func (n *Network) firstHop(src, dst int) int {
	if !n.Cfg.RandomFirstHop {
		return n.Routes.NextHop(src, dst)
	}
	want := n.Routes.HopCount(src, dst) - 1
	var minimal []int
	for _, e := range n.G.Adj[src] {
		if n.Routes.HopCount(e.To, dst) == want {
			minimal = append(minimal, e.To)
		}
	}
	if len(minimal) == 0 {
		return n.Routes.NextHop(src, dst)
	}
	return minimal[int(n.rand32())%len(minimal)]
}

// Now returns the current simulation cycle.
func (n *Network) Now() int64 { return n.now }

// Inject queues a message at its source. It returns the message for
// driver bookkeeping.
func (n *Network) Inject(m *Message) *Message {
	if m.Src < 0 || m.Src >= n.G.N || m.Dst < 0 || m.Dst >= n.G.N {
		panic(fmt.Sprintf("noc: inject with bad endpoints %d->%d", m.Src, m.Dst))
	}
	if m.Bytes <= 0 {
		panic("noc: inject with non-positive size")
	}
	m.ID = n.pendingID
	n.pendingID++
	m.InjectedAt = n.now
	n.messages = append(n.messages, m)
	if m.Src == m.Dst {
		m.delivered = true
		m.DeliveredAt = n.now
		return m
	}
	// Failed endpoints and partitions mark the message lost instead of
	// panicking: Run then reports a descriptive error (the upper layers
	// react by re-clustering), and the simulator never deadlocks.
	if n.failed[m.Src] || n.failed[m.Dst] {
		n.markLost(m, fmt.Sprintf("endpoint failed (%d->%d)", m.Src, m.Dst))
		return m
	}
	firstHop := n.firstHop(m.Src, m.Dst)
	if firstHop < 0 {
		n.markLost(m, fmt.Sprintf("no route %d->%d (network partitioned)", m.Src, m.Dst))
		return m
	}
	n.enqueueFlits(m, m.Bytes, firstHop)
	return m
}

// Driver generates traffic: Start injects initial messages; OnDeliver is
// called once per delivered message and may inject follow-ups; Done
// reports completion (checked when no traffic is in flight).
type Driver interface {
	Start(n *Network)
	OnDeliver(n *Network, m *Message)
	Done() bool
}

// Stats summarizes one run.
type Stats struct {
	Cycles       int64
	Messages     int
	Bytes        int64
	AvgLatency   float64 // cycles, injection to full delivery
	MaxLatency   int64
	FlitHops     int64
	BytesByClass map[topology.LinkClass]int64

	// Fault-recovery counters (zero on a healthy fabric): flits destroyed
	// by drops or module failures, timeout-driven retransmissions, and the
	// largest per-message retry count observed.
	DroppedFlits  int64
	Retransmits   int64
	MaxMsgRetries int

	// MaxLinkUtil / MeanLinkUtil are busy-flit fractions of link capacity
	// over the whole run (links that never carried traffic are excluded
	// from the mean — they were powered off per the paper's energy
	// methodology).
	MaxLinkUtil  float64
	MeanLinkUtil float64
}

// Duration converts the run length to seconds at the configured clock.
func (s Stats) Duration(clockHz float64) float64 { return float64(s.Cycles) / clockHz }

// Run drives the simulation until the driver is done and all traffic has
// drained, or maxCycles elapses (an error, indicating deadlock or
// overload). A message that becomes undeliverable — destination module
// failed, retransmit budget exhausted, or fabric partitioned — aborts the
// run immediately with a descriptive error rather than spinning to
// maxCycles.
func (n *Network) Run(d Driver, maxCycles int64) (Stats, error) {
	defer n.Close() // release the sharded stepper's pool, if one started
	d.Start(n)
	for {
		if err := n.LostErr(); err != nil {
			return Stats{}, err
		}
		if n.idle() && d.Done() {
			break
		}
		if n.now >= maxCycles {
			return Stats{}, fmt.Errorf("noc: exceeded %d cycles with traffic outstanding", maxCycles)
		}
		n.step(d)
	}
	return n.stats(), nil
}

// LostErr returns a descriptive error if any message has been declared
// undeliverable, or nil. Co-simulators driving the network via Step should
// poll it each cycle.
func (n *Network) LostErr() error {
	if len(n.lost) == 0 {
		return nil
	}
	m := n.lost[0]
	return fmt.Errorf("noc: %d message(s) lost; first: %d->%d (%d bytes): %s",
		len(n.lost), m.Src, m.Dst, m.Bytes, m.lossWhy)
}

// Step advances the simulation by one cycle under the driver — the
// building block for co-simulators that interleave network transport with
// their own per-cycle state machines (internal/cosim).
func (n *Network) Step(d Driver) { n.step(d) }

// Idle reports whether no flit is queued or in flight.
func (n *Network) Idle() bool { return n.idle() }

// idle reports whether no flit is queued or in flight and no retransmission
// is pending.
func (n *Network) idle() bool {
	if len(n.retryQ) > 0 {
		return false
	}
	for _, q := range n.injectQ {
		if len(q) > 0 {
			return false
		}
	}
	for _, l := range n.links {
		if len(l.pipeline) > 0 {
			return false
		}
	}
	for _, ports := range n.inOrder {
		for _, p := range ports {
			if len(p.queue) > 0 {
				return false
			}
		}
	}
	return true
}

// step advances one cycle: scheduled fault events, retransmit timers, link
// arrivals, ejection, then output arbitration and transmission. The three
// sweeps run over the shard plan — a single full-range shard sequentially,
// or Cfg.ShardWorkers shards on the worker pool with a barrier per stage;
// both orders fold identically (parallel.go), so flit-level results are
// bit-identical for every worker count.
func (n *Network) step(d Driver) {
	n.ensurePool()
	n.now++
	n.tel.cycles.Inc()

	// 0. Fire scheduled module failures and due retransmit timers. Both
	// mutate global routing/retry state, so this stage stays sequential.
	for len(n.pendingFailures) > 0 && n.pendingFailures[0].At <= n.now {
		n.FailNode(n.pendingFailures[0].Node)
		n.pendingFailures = n.pendingFailures[1:]
	}
	n.processRetries()

	// 1. Deliver pipeline arrivals into downstream input queues (if
	// space). Each link touches only its own pipeline and its unique
	// destination port, so links shard freely.
	n.runStage(func(s int) {
		r := n.linkShard[s]
		for li := r[0]; li < r[1]; li++ {
			n.arriveLink(li)
		}
	})

	// 2. Eject flits destined to their local node: parallel scans pop
	// destined flits per node, then deliveries — which may inject
	// follow-up traffic and consume the shared RNG — run after the
	// barrier in ascending node order.
	n.runStage(func(s int) {
		sc := &n.scratch[s]
		sc.eject = sc.eject[:0]
		r := n.nodeShard[s]
		for v := r[0]; v < r[1]; v++ {
			n.scanNode(v, sc)
		}
	})
	for i := range n.scratch {
		for _, f := range n.scratch[i].eject {
			n.deliverFlit(d, f)
		}
	}

	// 3. Transmit: every link moves up to flitsPerCyc flits whose route
	// passes through it, arbitrating round-robin across the node's input
	// ports and the link's own injection queue. Links consult the fault
	// plan each cycle: degraded bandwidth throttles the budget through a
	// fractional-credit accumulator, extra SerDes stretches the pipeline,
	// and drop faults destroy flits in transit (scheduling retransmission).
	// Shards own whole routers, so every queue a link arbitrates over is
	// shard-local; statistics and drop events fold after the barrier.
	n.runStage(func(s int) {
		sc := &n.scratch[s]
		sc.resetTransmit()
		r := n.linkShard[s]
		for li := r[0]; li < r[1]; li++ {
			n.transmitLink(li, sc)
		}
	})
	for i := range n.scratch {
		n.applyTransmit(&n.scratch[i])
	}
}

// arbSource is one candidate feeder queue for an output link.
type arbSource struct {
	q      *[]flit
	inject bool // the link's own injection queue (pre-routed)
}

// arbSources returns every queue at node v that can feed output link li:
// the input ports plus that link's injection queue.
func (n *Network) arbSources(v, li int) []arbSource {
	out := make([]arbSource, 0, len(n.inPorts[v])+1)
	// Deterministic order: iterate adjacency (stable) rather than map order.
	for _, e := range n.G.Adj[v] {
		// e.To's reverse port at v — i.e. flits arriving from e.To.
		if p, ok := n.inPorts[v][e.To]; ok {
			out = append(out, arbSource{q: &p.queue})
		}
	}
	out = append(out, arbSource{q: &n.injectQ[li], inject: true})
	return out
}

func (n *Network) deliverFlit(d Driver, f flit) {
	m := f.msg
	m.receivedBytes += f.bytes
	if m.receivedBytes >= m.Bytes && !m.delivered {
		m.delivered = true
		m.DeliveredAt = n.now
		n.tel.delivered.Inc()
		d.OnDeliver(n, m)
	}
}

func (n *Network) stats() Stats {
	s := Stats{
		Cycles:       n.now,
		Messages:     len(n.messages),
		FlitHops:     n.FlitHops,
		BytesByClass: n.BytesByClass,
		DroppedFlits: n.DroppedFlits,
		Retransmits:  n.Retransmits,
	}
	var totalLat int64
	for _, m := range n.messages {
		s.Bytes += int64(m.Bytes)
		lat := m.DeliveredAt - m.InjectedAt
		totalLat += lat
		if lat > s.MaxLatency {
			s.MaxLatency = lat
		}
		if m.Retries > s.MaxMsgRetries {
			s.MaxMsgRetries = m.Retries
		}
	}
	if len(n.messages) > 0 {
		s.AvgLatency = float64(totalLat) / float64(len(n.messages))
	}
	if n.now > 0 {
		var sum float64
		active := 0
		for _, l := range n.links {
			if l.busyFlits == 0 {
				continue
			}
			u := float64(l.busyFlits) / (float64(n.now) * float64(l.flitsPerCyc))
			n.tel.linkUtil.Observe(u)
			sum += u
			active++
			if u > s.MaxLinkUtil {
				s.MaxLinkUtil = u
			}
		}
		if active > 0 {
			s.MeanLinkUtil = sum / float64(active)
		}
	}
	n.traceMessages()
	return s
}
