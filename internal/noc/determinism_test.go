package noc

import (
	"reflect"
	"testing"

	"mptwino/internal/fault"
	"mptwino/internal/topology"
)

// msgRecord is the per-message observable outcome compared across worker
// counts: if any flit-level event reordered, delivery times or retry
// counts would shift and the comparison would fail.
type msgRecord struct {
	ID, Src, Dst, Bytes, Tag, Retries int
	InjectedAt, DeliveredAt           int64
}

// runDeterminism executes one scenario at the given shard worker count and
// returns the run's stats plus every message's observable outcome.
func runDeterminism(t *testing.T, workers int, build func() (*topology.Graph, Config, Driver, *fault.Plan)) (Stats, []msgRecord) {
	t.Helper()
	g, cfg, d, plan := build()
	cfg.ShardWorkers = workers
	n := New(g, cfg)
	if plan != nil {
		if err := n.AttachFaults(plan); err != nil {
			t.Fatal(err)
		}
	}
	st, err := n.Run(d, 50_000_000)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	msgs := make([]msgRecord, len(n.messages))
	for i, m := range n.messages {
		msgs[i] = msgRecord{
			ID: m.ID, Src: m.Src, Dst: m.Dst, Bytes: m.Bytes, Tag: m.Tag,
			Retries: m.Retries, InjectedAt: m.InjectedAt, DeliveredAt: m.DeliveredAt,
		}
	}
	return st, msgs
}

// TestParallelStepBitIdentical cross-checks the sharded cycle loop against
// the sequential path: for every scenario (collectives, all-to-all with
// randomized routing, hotspots, concurrent traffic, link faults with
// retransmission) the full Stats and the per-message event times must be
// byte-identical across worker counts {1, 2, 8}.
func TestParallelStepBitIdentical(t *testing.T) {
	members := func(k int) []int {
		m := make([]int, k)
		for i := range m {
			m[i] = i
		}
		return m
	}
	scenarios := []struct {
		name  string
		build func() (*topology.Graph, Config, Driver, *fault.Plan)
	}{
		{"ring-collective", func() (*topology.Graph, Config, Driver, *fault.Plan) {
			return topology.Ring(16), DefaultConfig(),
				&RingCollective{Members: members(16), Bytes: 16 * 1024}, nil
		}},
		{"fbfly-alltoall", func() (*topology.Graph, Config, Driver, *fault.Plan) {
			return topology.FBFly2D(4), DefaultConfig(),
				&AllToAll{Members: members(16), Bytes: 2048}, nil
		}},
		{"fbfly-alltoall-random-seed7", func() (*topology.Graph, Config, Driver, *fault.Plan) {
			cfg := DefaultConfig()
			cfg.RandomFirstHop = true
			cfg.Seed = 7
			return topology.FBFly2D(4), cfg, &AllToAll{Members: members(16), Bytes: 2048}, nil
		}},
		{"fbfly-alltoall-random-seed99", func() (*topology.Graph, Config, Driver, *fault.Plan) {
			cfg := DefaultConfig()
			cfg.RandomFirstHop = true
			cfg.Seed = 99
			return topology.FBFly2D(4), cfg, &AllToAll{Members: members(16), Bytes: 2048}, nil
		}},
		{"hotspot", func() (*topology.Graph, Config, Driver, *fault.Plan) {
			return topology.FBFly2D(4), DefaultConfig(),
				&Hotspot{Members: members(16), Dst: 5, Bytes: 4096}, nil
		}},
		{"multi-driver", func() (*topology.Graph, Config, Driver, *fault.Plan) {
			return topology.Ring(16), DefaultConfig(), NewMultiDriver(
				&RingCollective{Members: members(8), Bytes: 4096},
				&Hotspot{Members: []int{8, 9, 10, 11}, Dst: 9, Bytes: 2048},
			), nil
		}},
		{"link-faults-with-retransmit", func() (*topology.Graph, Config, Driver, *fault.Plan) {
			plan := fault.NewPlan(42).
				DegradeLink(0, 1, 0, 0, 0.25, 10).
				DropOnLink(2, 3, 0, 5000, 0.2)
			return topology.FBFly2D(4), DefaultConfig(),
				&AllToAll{Members: members(16), Bytes: 1024}, plan
		}},
		{"fleet-profiles-with-drops", func() (*topology.Graph, Config, Driver, *fault.Plan) {
			plan := fault.MixedGenerationPlan(42, 16, 0.7, 0.5).
				DropOnLink(2, 3, 0, 5000, 0.2)
			return topology.FBFly2D(4), DefaultConfig(),
				&AllToAll{Members: members(16), Bytes: 1024}, plan
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			refStats, refMsgs := runDeterminism(t, 1, sc.build)
			if refStats.Cycles == 0 {
				t.Fatal("sequential reference run did no work")
			}
			for _, workers := range []int{2, 8} {
				st, msgs := runDeterminism(t, workers, sc.build)
				if !reflect.DeepEqual(refStats, st) {
					t.Errorf("workers=%d: stats differ\nseq: %+v\npar: %+v", workers, refStats, st)
				}
				if !reflect.DeepEqual(refMsgs, msgs) {
					t.Errorf("workers=%d: per-message outcomes differ (count %d vs %d)",
						workers, len(refMsgs), len(msgs))
					for i := range refMsgs {
						if i < len(msgs) && refMsgs[i] != msgs[i] {
							t.Errorf("  first divergence at message %d:\nseq: %+v\npar: %+v",
								i, refMsgs[i], msgs[i])
							break
						}
					}
				}
			}
		})
	}
}

// TestShardWorkersValidation rejects negative shard counts and accepts the
// sequential settings.
func TestShardWorkersValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ShardWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative ShardWorkers passed validation")
	}
	for _, w := range []int{0, 1, 8} {
		cfg.ShardWorkers = w
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ShardWorkers=%d rejected: %v", w, err)
		}
	}
}

// TestShardedStepUnderNodeFailure exercises the sequential stage-0 fault
// path (node death, topology mutation, route rebuild) interleaved with
// sharded stages: outcomes must match the sequential path exactly. Traffic
// avoids the dying node so the run completes.
func TestShardedStepUnderNodeFailure(t *testing.T) {
	build := func() (*topology.Graph, Config, Driver, *fault.Plan) {
		// Node 15 dies early; traffic among nodes 0..11 must reroute
		// around it on the FBFLY and still complete identically.
		plan := fault.NewPlan(7).FailNode(15, 200)
		return topology.FBFly2D(4), DefaultConfig(),
			&AllToAll{Members: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, Bytes: 2048}, plan
	}
	refStats, refMsgs := runDeterminism(t, 1, build)
	for _, workers := range []int{2, 8} {
		st, msgs := runDeterminism(t, workers, build)
		if !reflect.DeepEqual(refStats, st) {
			t.Errorf("workers=%d: stats differ under node failure\nseq: %+v\npar: %+v", workers, refStats, st)
		}
		if !reflect.DeepEqual(refMsgs, msgs) {
			t.Errorf("workers=%d: message outcomes differ under node failure", workers)
		}
	}
}
