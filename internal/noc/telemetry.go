package noc

import (
	"fmt"

	"mptwino/internal/telemetry"
	"mptwino/internal/topology"
)

// instruments holds the network's resolved telemetry handles. The zero
// value (all nil) is the disabled state — every update through a nil
// handle is a no-op, so the cycle loop calls them unconditionally.
//
// Determinism: every emission site below is sequential or a post-barrier
// fold whose order is shard-count-invariant (DESIGN.md §7), and the
// counters are commutative sums, so metrics and trace bytes are
// bit-identical for every Config.ShardWorkers setting.
type instruments struct {
	cycles      *telemetry.Counter
	flitHops    *telemetry.Counter
	dropped     *telemetry.Counter
	retransmits *telemetry.Counter
	failures    *telemetry.Counter
	lost        *telemetry.Counter
	delivered   *telemetry.Counter
	bytesClass  [topology.Host + 1]*telemetry.Counter
	linkUtil    *telemetry.Histogram
	tracer      *telemetry.Tracer
}

// Instrument attaches a metrics registry and/or tracer to the network.
// Call before Run/Step; pass nil for either to leave it disabled.
//
// Counters: noc.cycles, noc.flit_hops, noc.dropped_flits,
// noc.retransmits, noc.node_failures, noc.messages_lost,
// noc.messages_delivered, noc.bytes.{full,narrow,host}; histogram
// noc.link_util (busy-fraction of each active link over the run, observed
// once per link at stats time).
//
// Trace events land in the telemetry.PIDNoC lane: one span per delivered
// message (tid = source node, so each router gets its own timeline row)
// plus instant events for node failures, flit-drop retransmissions, and
// lost messages.
func (n *Network) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	n.tel = instruments{
		cycles:      reg.Counter("noc.cycles"),
		flitHops:    reg.Counter("noc.flit_hops"),
		dropped:     reg.Counter("noc.dropped_flits"),
		retransmits: reg.Counter("noc.retransmits"),
		failures:    reg.Counter("noc.node_failures"),
		lost:        reg.Counter("noc.messages_lost"),
		delivered:   reg.Counter("noc.messages_delivered"),
		linkUtil:    reg.Histogram("noc.link_util"),
		tracer:      tr,
	}
	for c := topology.Full; c <= topology.Host; c++ {
		n.tel.bytesClass[c] = reg.Counter("noc.bytes." + c.String())
	}
	tr.NameProcess(telemetry.PIDNoC, "noc")
}

// traceMessages emits one complete-span per message (delivered or lost)
// in injection order — a deterministic sequential sweep at stats time.
func (n *Network) traceMessages() {
	if !n.tel.tracer.Enabled() {
		return
	}
	for _, m := range n.messages {
		name := fmt.Sprintf("msg %d->%d", m.Src, m.Dst)
		args := map[string]any{"id": m.ID, "bytes": m.Bytes, "retries": m.Retries, "tv": "comm.noc"}
		end := m.DeliveredAt
		if m.lost {
			name = "LOST " + name
			args["why"] = m.lossWhy
			end = n.now
		}
		n.tel.tracer.Span(telemetry.PIDNoC, m.Src, name, "noc.msg", m.InjectedAt, end-m.InjectedAt, args)
	}
}
