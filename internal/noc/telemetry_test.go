package noc

import (
	"bytes"
	"reflect"
	"testing"

	"mptwino/internal/fault"
	"mptwino/internal/telemetry"
	"mptwino/internal/topology"
)

// TestTelemetryDeterministicAcrossShardWorkers runs an instrumented
// all-to-all with link faults (so drop/retransmit paths fire) at shard
// worker counts {1, 2, 8} and asserts the metrics snapshot and exported
// trace bytes are identical. Every emission site is sequential or a
// post-barrier fold, so the whole surface must be shard-count-free.
func TestTelemetryDeterministicAcrossShardWorkers(t *testing.T) {
	members := make([]int, 16)
	for i := range members {
		members[i] = i
	}
	run := func(workers int) (map[string]int64, []byte) {
		t.Helper()
		cfg := DefaultConfig()
		cfg.ShardWorkers = workers
		n := New(topology.FBFly2D(4), cfg)
		plan := fault.NewPlan(42).
			DegradeLink(0, 1, 0, 0, 0.25, 10).
			DropOnLink(2, 3, 0, 5000, 0.2)
		if err := n.AttachFaults(plan); err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		trc := telemetry.NewTracer()
		n.Instrument(reg, trc)
		if _, err := n.Run(&AllToAll{Members: members, Bytes: 1024}, 50_000_000); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := trc.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(), buf.Bytes()
	}

	refSnap, refTrace := run(1)

	// Sanity: the run did real work and the faulty links actually dropped.
	for _, name := range []string{
		"noc.cycles", "noc.flit_hops", "noc.messages_delivered",
		"noc.dropped_flits", "noc.retransmits", "noc.bytes.narrow",
	} {
		if refSnap[name] == 0 {
			t.Errorf("%s = 0, want nonzero", name)
		}
	}
	if got, want := refSnap["noc.messages_delivered"], int64(16*15); got != want {
		t.Errorf("noc.messages_delivered = %d, want %d (all-to-all over 16 members)", got, want)
	}
	if !bytes.Contains(refTrace, []byte(`"noc.msg"`)) {
		t.Error("trace contains no message spans")
	}

	for _, workers := range []int{2, 8} {
		snap, trace := run(workers)
		if !reflect.DeepEqual(refSnap, snap) {
			t.Errorf("workers=%d: metrics snapshot differs from workers=1:\nref: %v\ngot: %v",
				workers, refSnap, snap)
		}
		if !bytes.Equal(refTrace, trace) {
			t.Errorf("workers=%d: trace bytes differ from workers=1 (%d vs %d bytes)",
				workers, len(refTrace), len(trace))
		}
	}
}
