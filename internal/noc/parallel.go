package noc

import (
	"mptwino/internal/fault"
	"mptwino/internal/parallel"
	"mptwino/internal/topology"
)

// Sharded cycle execution. With Config.ShardWorkers > 1 the three
// per-cycle sweeps (pipeline arrivals, ejection, transmission) each run
// partitioned across a persistent worker pool with a barrier between
// stages. The partitioning keeps all mutated state shard-local:
//
//   - Links are grouped by their source router. Every output link of a
//     router arbitrates over the same input ports, so a shard owns whole
//     routers (contiguous node ranges) and with them every queue its links
//     read or write. Links were built in source-ascending order, so a node
//     range maps to a contiguous link range.
//   - Arrivals write only the link's own pipeline and its unique
//     destination port (one feeder link per port).
//   - Ejection scans pop destined flits into per-shard lists; the actual
//     deliveries (which can inject follow-up traffic and consume the
//     shared RNG) happen after the barrier, in ascending node order —
//     exactly the sequential order.
//   - Transmission accumulates statistics and flit-drop events per shard;
//     they fold into the global counters and the retransmit queue after
//     the barrier, in ascending link order — again the sequential order.
//
// The sequential path (ShardWorkers <= 1) runs the same stage bodies over
// a single full-range shard, so both paths are one code path and the
// parallel results are bit-identical by construction. The determinism
// test asserts this across worker counts and seeds.

// dropEvent is one flit destroyed by a fault during transmission, recorded
// per shard and folded into the retransmit machinery after the barrier.
type dropEvent struct {
	msg   *Message
	bytes int
}

// stepScratch is one shard's per-cycle workspace.
type stepScratch struct {
	eject        []flit
	flitHops     int64
	dropped      int64
	bytesByClass [topology.Host + 1]int64
	drops        []dropEvent

	_ [64]byte // keep adjacent shards' counters off one cache line
}

// resetTransmit clears the transmission-stage accumulators.
func (sc *stepScratch) resetTransmit() {
	sc.flitHops = 0
	sc.dropped = 0
	for i := range sc.bytesByClass {
		sc.bytesByClass[i] = 0
	}
	sc.drops = sc.drops[:0]
}

// buildShards plans the node/link partition for the configured worker
// count. Called once from New; the plan indexes never change afterwards
// (module failures only mark links dead, they do not renumber).
func (n *Network) buildShards() {
	w := n.Cfg.ShardWorkers
	if w < 1 {
		w = 1
	}
	n.nodeShard = parallel.Shards(n.G.N, w)
	if len(n.nodeShard) == 0 {
		n.nodeShard = [][2]int{{0, 0}}
	}
	// linkStart[v] = index of the first link departing node v (links are
	// built in source-ascending order).
	linkStart := make([]int, n.G.N+1)
	for v := 0; v < n.G.N; v++ {
		linkStart[v+1] = linkStart[v] + len(n.outLinks[v])
	}
	n.linkShard = make([][2]int, len(n.nodeShard))
	for i, r := range n.nodeShard {
		n.linkShard[i] = [2]int{linkStart[r[0]], linkStart[r[1]]}
	}
	n.scratch = make([]stepScratch, len(n.nodeShard))
}

// ensurePool lazily starts the worker pool behind sharded stepping. Run
// closes it on return; Step-driven co-simulations should call Close when
// finished with the network.
func (n *Network) ensurePool() {
	if n.pool == nil && len(n.scratch) > 1 {
		n.pool = parallel.NewPool(len(n.scratch))
	}
}

// Close releases the sharded stepper's worker pool, if any. It is safe to
// call on a sequential network and to call more than once; the network
// remains usable (the pool restarts on demand).
func (n *Network) Close() {
	if n.pool != nil {
		n.pool.Close()
		n.pool = nil
	}
}

// runStage executes fn for every shard: on the pool when sharding is
// active, inline otherwise.
func (n *Network) runStage(fn func(shard int)) {
	if n.pool != nil {
		n.pool.Run(fn)
		return
	}
	for s := range n.scratch {
		fn(s)
	}
}

// arriveLink delivers link li's due pipeline flits into its destination
// input port, as buffer space allows (stage 1 for one link).
func (n *Network) arriveLink(li int) {
	l := n.links[li]
	if l.dead {
		return
	}
	kept := l.pipeline[:0]
	p := l.dst
	for _, inf := range l.pipeline {
		if inf.arriveAt <= n.now && len(p.queue) < n.Cfg.BufferFlits {
			p.queue = append(p.queue, inf.f)
		} else {
			kept = append(kept, inf)
		}
	}
	l.pipeline = kept
}

// scanNode pops the flits destined to node v from its input ports into the
// shard's ejection list (stage 2 scan for one node). Ports are visited in
// their fixed construction order, so concatenating the shards' lists in
// shard order reproduces the sequential ejection order exactly.
func (n *Network) scanNode(v int, sc *stepScratch) {
	for _, p := range n.inOrder[v] {
		kept := p.queue[:0]
		for _, f := range p.queue {
			if f.msg.Dst == v {
				sc.eject = append(sc.eject, f)
			} else {
				kept = append(kept, f)
			}
		}
		p.queue = kept
	}
}

// transmitLink arbitrates and transmits up to one cycle's flit budget on
// link li (stage 3 for one link), accumulating statistics and drop events
// in the shard scratch.
func (n *Network) transmitLink(li int, sc *stepScratch) {
	l := n.links[li]
	if l.dead {
		return
	}
	budget := l.flitsPerCyc
	latency := l.latency
	scale := l.profileScale // static capability derating (1 = nominal)
	if len(l.faults) > 0 {
		fs, extra := fault.LinkState(l.faults, n.now)
		latency += int64(extra)
		scale *= fs
	}
	if scale <= 0 {
		return
	}
	if scale < 1 {
		l.credit += scale * float64(l.flitsPerCyc)
		budget = int(l.credit)
		if budget < 1 {
			return // sub-flit credit accumulates for later cycles
		}
		l.credit -= float64(budget)
	}
	sources := n.arbSources(l.from, li)
	ns := len(sources)
	if ns == 0 {
		return
	}
	sent := 0
	start := n.rr[li] % ns
	for s := 0; s < ns && budget > 0; s++ {
		src := sources[(start+s)%ns]
		for budget > 0 && len(*src.q) > 0 {
			f := (*src.q)[0]
			// Flits in this link's injection queue already committed to
			// this first hop (possibly a randomized minimal choice);
			// transit flits follow the deterministic route table.
			if !src.inject && n.Routes.NextHop(l.from, f.msg.Dst) != l.to {
				break // head flit routes elsewhere; try next source
			}
			*src.q = (*src.q)[1:]
			l.busyFlits++
			budget--
			if len(l.faults) > 0 && n.plan != nil &&
				fault.DropFlit(n.plan.Seed, l.faults, l.from, l.to, n.now, sent) {
				// Corrupted in transit: the slot is consumed but the
				// flit never arrives; the source retransmits on timeout.
				sc.dropped++
				sc.drops = append(sc.drops, dropEvent{msg: f.msg, bytes: f.bytes})
				sent++
				continue
			}
			l.pipeline = append(l.pipeline, inFlight{f: f, arriveAt: n.now + latency})
			sc.flitHops++
			sc.bytesByClass[l.class] += int64(f.bytes)
			sent++
		}
	}
	n.rr[li] = (start + 1) % ns
}

// applyTransmit folds one shard's transmission results into the global
// counters and retransmit queue. Shards fold in ascending order, so drop
// events arm retry timers in the same order the sequential loop would.
func (n *Network) applyTransmit(sc *stepScratch) {
	n.FlitHops += sc.flitHops
	n.DroppedFlits += sc.dropped
	n.tel.flitHops.Add(sc.flitHops)
	n.tel.dropped.Add(sc.dropped)
	for class, b := range sc.bytesByClass {
		if b != 0 {
			n.BytesByClass[topology.LinkClass(class)] += b
			n.tel.bytesClass[class].Add(b)
		}
	}
	for _, ev := range sc.drops {
		n.scheduleRetry(ev.msg, ev.bytes)
	}
}
