package noc

import (
	"reflect"
	"strings"
	"testing"

	"mptwino/internal/fault"
	"mptwino/internal/topology"
)

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := map[string]func(*Config){
		"zero flit":        func(c *Config) { c.FlitBytes = 0 },
		"negative flit":    func(c *Config) { c.FlitBytes = -4 },
		"zero buffer":      func(c *Config) { c.BufferFlits = 0 },
		"zero clock":       func(c *Config) { c.ClockHz = 0 },
		"negative serdes":  func(c *Config) { c.SerDesCycles = -1 },
		"negative host":    func(c *Config) { c.HostExtra = -1 },
		"negative timeout": func(c *Config) { c.RetryTimeout = -1 },
		"negative retries": func(c *Config) { c.MaxRetries = -1 },
	}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.HasPrefix(err.Error(), "noc: ") {
			t.Errorf("%s: error %q lacks package prefix", name, err)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted FlitBytes=0")
		}
	}()
	cfg := DefaultConfig()
	cfg.FlitBytes = 0
	New(topology.Ring(4), cfg)
}

func TestDriversRejectInvalidConfig(t *testing.T) {
	g := topology.Ring(4)
	n := New(g, DefaultConfig())
	n.Cfg.BufferFlits = 0 // corrupt after construction
	for name, d := range map[string]Driver{
		"ring":     &RingCollective{Members: []int{0, 1, 2}, Bytes: 30},
		"alltoall": &AllToAll{Members: []int{0, 1}, Bytes: 30},
		"hotspot":  &Hotspot{Members: []int{0, 1}, Dst: 0, Bytes: 30},
		"multi":    NewMultiDriver(&AllToAll{Members: []int{0, 1}, Bytes: 30}),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s driver started on an invalid config", name)
				}
			}()
			d.Start(n)
		}()
	}
}

// faultRun builds a ring-8 network with the plan attached and runs one
// message through it.
func faultRun(t *testing.T, plan *fault.Plan, src, dst, bytes int, maxCycles int64) (Stats, error) {
	t.Helper()
	n := New(topology.Ring(8), DefaultConfig())
	if plan != nil {
		if err := n.AttachFaults(plan); err != nil {
			t.Fatal(err)
		}
	}
	return n.Run(&singleMessage{src: src, dst: dst, bytes: bytes}, maxCycles)
}

func TestDropRetransmitCompletes(t *testing.T) {
	plan := fault.NewPlan(42).DropOnLink(0, 1, 0, 0, 0.3)
	st, err := faultRun(t, plan, 0, 1, 300, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedFlits == 0 {
		t.Fatal("no flits dropped under DropProb=0.3")
	}
	if st.Retransmits == 0 {
		t.Fatal("drops recovered without retransmissions")
	}
	if st.MaxMsgRetries < 1 {
		t.Fatal("per-message retry counter not surfaced")
	}
	healthy, err := faultRun(t, nil, 0, 1, 300, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= healthy.Cycles {
		t.Fatalf("faulty run (%d cycles) not slower than healthy (%d)", st.Cycles, healthy.Cycles)
	}
}

// TestFaultDeterminism: identical plan + seed must give byte-identical
// stats — the fault model's core contract.
func TestFaultDeterminism(t *testing.T) {
	run := func() Stats {
		plan := fault.NewPlan(7).
			DropOnLink(0, 1, 0, 0, 0.25).
			DegradeLink(1, 2, 100, 4000, 0.5, 2)
		st, err := faultRun(t, plan, 0, 2, 600, 200000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan+seed diverged:\n%+v\n%+v", a, b)
	}
	plan := fault.NewPlan(8).DropOnLink(0, 1, 0, 0, 0.25).DegradeLink(1, 2, 100, 4000, 0.5, 2)
	c, err := faultRun(t, plan, 0, 2, 600, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seed produced identical stats (suspicious)")
	}
}

func TestRetryExhaustionErrors(t *testing.T) {
	g := topology.NewGraph(2)
	g.AddBidirectional(0, 1, topology.Full)
	cfg := DefaultConfig()
	cfg.MaxRetries = 2
	n := New(g, cfg)
	if err := n.AttachFaults(fault.NewPlan(1).DropOnLink(0, 1, 0, 0, 1.0)); err != nil {
		t.Fatal(err)
	}
	_, err := n.Run(&singleMessage{src: 0, dst: 1, bytes: 30}, 1_000_000)
	if err == nil {
		t.Fatal("total flit loss delivered a message")
	}
	if !strings.Contains(err.Error(), "retries exhausted") {
		t.Fatalf("error %q does not name retry exhaustion", err)
	}
	// The abort fires after (MaxRetries+1) timeout windows, not at maxCycles.
	if n.Now() > (int64(cfg.MaxRetries)+2)*cfg.RetryTimeout+100 {
		t.Fatalf("exhaustion detected only at cycle %d (spun instead of aborting)", n.Now())
	}
}

func TestDegradedBandwidthSlows(t *testing.T) {
	healthy, err := faultRun(t, nil, 0, 1, 3000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(3).DegradeLink(0, 1, 0, 0, 0.25, 0)
	slow, err := faultRun(t, plan, 0, 1, 3000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if slow.DroppedFlits != 0 || slow.Retransmits != 0 {
		t.Fatal("pure degradation dropped flits")
	}
	if float64(slow.Cycles) < 2.5*float64(healthy.Cycles) {
		t.Fatalf("0.25× bandwidth: %d cycles vs healthy %d (want ≳3.3×)", slow.Cycles, healthy.Cycles)
	}
}

func TestExtraSerDesAddsLatency(t *testing.T) {
	healthy, err := faultRun(t, nil, 0, 1, 10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(3).DegradeLink(0, 1, 0, 0, 0, 100) // scale unset, +100 cycles
	slow, err := faultRun(t, plan, 0, 1, 10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if d := slow.MaxLatency - healthy.MaxLatency; d < 95 || d > 105 {
		t.Fatalf("extra SerDes added %d cycles of latency, want ~100", d)
	}
}

// TestNodeFailureReroutes: a module on the message's path dies mid-
// transfer; the ring reroutes the other way and timeouts recover the
// in-flight flits.
func TestNodeFailureReroutes(t *testing.T) {
	plan := fault.NewPlan(5).FailNode(2, 40)
	st, err := faultRun(t, plan, 0, 4, 3000, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedFlits == 0 {
		t.Fatal("failure at cycle 40 destroyed no in-flight flits (test not exercising transit loss)")
	}
	if st.Retransmits == 0 {
		t.Fatal("transit flit loss recovered without retransmission")
	}
}

// TestPartitionErrorsNotDeadlock: a failure that cuts the only path must
// produce a descriptive error promptly, not a deadlock at maxCycles.
func TestPartitionErrorsNotDeadlock(t *testing.T) {
	line := func() *topology.Graph {
		g := topology.NewGraph(3)
		g.AddBidirectional(0, 1, topology.Full)
		g.AddBidirectional(1, 2, topology.Full)
		return g
	}

	// Mid-run: node 1 dies while 0→2 is in flight.
	n := New(line(), DefaultConfig())
	if err := n.AttachFaults(fault.NewPlan(1).FailNode(1, 5)); err != nil {
		t.Fatal(err)
	}
	_, err := n.Run(&singleMessage{src: 0, dst: 2, bytes: 3000}, 10_000_000)
	if err == nil {
		t.Fatal("partitioned transfer completed")
	}
	if !strings.Contains(err.Error(), "no route") {
		t.Fatalf("error %q does not report the partition", err)
	}
	if n.Now() > 2*n.Cfg.RetryTimeout+100 {
		t.Fatalf("partition reported only at cycle %d (deadlocked until then)", n.Now())
	}

	// Pre-partitioned: injection into a known partition errors immediately.
	n2 := New(line(), DefaultConfig())
	n2.FailNode(1)
	_, err = n2.Run(&singleMessage{src: 0, dst: 2, bytes: 30}, 1000)
	if err == nil || !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("pre-partitioned inject: err = %v, want partition error", err)
	}

	// CheckReachable surfaces the same condition at the topology layer.
	g := line()
	g.RemoveNode(1)
	rt := topology.BuildRoutes(g)
	if err := rt.CheckReachable([]int{0, 2}); err == nil {
		t.Fatal("CheckReachable missed the partition")
	}
}

// TestScheduledFailureDeterminism: module failures plus drops stay
// deterministic end to end.
func TestScheduledFailureDeterminism(t *testing.T) {
	run := func() Stats {
		plan := fault.NewPlan(11).FailNode(2, 40).DropOnLink(7, 0, 0, 0, 0.1)
		st, err := faultRun(t, plan, 0, 4, 2000, 400000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("scheduled-failure run diverged:\n%+v\n%+v", a, b)
	}
}

// TestProfileLinkScaleSlows: a module capability profile derates every
// link the module terminates, throttling throughput like a bandwidth
// fault but fleet-wide and without any fault window.
func TestProfileLinkScaleSlows(t *testing.T) {
	healthy, err := faultRun(t, nil, 0, 1, 3000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(3).ProfileModule(fault.ModuleProfile{Module: 1, LinkScale: 0.25})
	slow, err := faultRun(t, plan, 0, 1, 3000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if slow.DroppedFlits != 0 || slow.Retransmits != 0 {
		t.Fatal("capability derating dropped flits")
	}
	if float64(slow.Cycles) < 2.5*float64(healthy.Cycles) {
		t.Fatalf("0.25× link profile: %d cycles vs healthy %d (want ≳3.3×)", slow.Cycles, healthy.Cycles)
	}
	// The slower endpoint gates the link: a profile on the *other* endpoint
	// of the same traffic throttles identically.
	planFrom := fault.NewPlan(3).ProfileModule(fault.ModuleProfile{Module: 0, LinkScale: 0.25})
	slowFrom, err := faultRun(t, planFrom, 0, 1, 3000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if slowFrom.Cycles != slow.Cycles {
		t.Fatalf("profile on src gave %d cycles, on dst %d — endpoints should gate symmetrically",
			slowFrom.Cycles, slow.Cycles)
	}
}

// TestProfileScaleComposesWithFaults: a profiled link that also suffers a
// bandwidth fault runs at the product of the two scales.
func TestProfileScaleComposesWithFaults(t *testing.T) {
	plan := fault.NewPlan(3).
		ProfileModule(fault.ModuleProfile{Module: 1, LinkScale: 0.5}).
		DegradeLink(0, 1, 0, 0, 0.5, 0)
	both, err := faultRun(t, plan, 0, 1, 3000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	quarter := fault.NewPlan(3).DegradeLink(0, 1, 0, 0, 0.25, 0)
	ref, err := faultRun(t, quarter, 0, 1, 3000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	// Same effective 0.25× rate on the bottleneck link; allow a small
	// difference from the ring's unfaulted reverse path.
	if d := both.Cycles - ref.Cycles; d < -100 || d > 100 {
		t.Fatalf("0.5 profile × 0.5 fault ran %d cycles, 0.25 fault alone %d", both.Cycles, ref.Cycles)
	}
}
