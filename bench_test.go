// Package mptwino's root bench suite regenerates every table and figure of
// the paper's evaluation (DESIGN.md §4 maps each benchmark to its
// experiment) and reports the headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation:
//
//	BenchmarkFig01ComputeVsAccess   Fig. 1
//	BenchmarkFig06CommPerLayer      Fig. 6
//	BenchmarkFig07CommScaling       Fig. 7
//	BenchmarkFig12ActPrediction     Fig. 12 + §V-B numbers
//	BenchmarkFig14ModifiedJoin      Fig. 14
//	BenchmarkFig15LayerTimeEnergy   Fig. 15
//	BenchmarkFig16WeightSize        Fig. 16
//	BenchmarkFig17FullCNN           Fig. 17
//	BenchmarkFig18IsoPower          Fig. 18
//	BenchmarkNoC*                   network-simulator validation
//	BenchmarkKernel*                numeric kernel micro-benchmarks
//	BenchmarkAblation*              DESIGN.md §5 design-choice ablations
package mptwino

import (
	"testing"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/cosim"
	"mptwino/internal/figures"
	"mptwino/internal/model"
	"mptwino/internal/ndp"
	"mptwino/internal/noc"
	"mptwino/internal/parallel"
	"mptwino/internal/quant"
	"mptwino/internal/sim"
	"mptwino/internal/telemetry"
	"mptwino/internal/tensor"
	"mptwino/internal/topology"
	"mptwino/internal/winograd"
)

// reportFigure runs one figure generator b.N times and reports the chosen
// metrics.
func reportFigure(b *testing.B, gen func() figures.Result, keys map[string]string) {
	b.Helper()
	var r figures.Result
	for i := 0; i < b.N; i++ {
		r = gen()
	}
	for metric, unit := range keys {
		v, ok := r.Metrics[metric]
		if !ok {
			b.Fatalf("figure %s missing metric %q", r.ID, metric)
		}
		b.ReportMetric(v, unit)
	}
}

func BenchmarkFig01ComputeVsAccess(b *testing.B) {
	reportFigure(b, figures.Fig01, map[string]string{
		"avg_compute_reduction": "compute_redux_x", // paper: 2.8x
		"avg_access_increase":   "access_incr_x",   // paper: 4.4x
	})
}

func BenchmarkFig06CommPerLayer(b *testing.B) {
	reportFigure(b, figures.Fig06, map[string]string{
		"Early/dp_total_MB":       "early_dp_MB",
		"Early/mpt-16g_total_MB":  "early_mpt16_MB",
		"Late-2/dp_total_MB":      "late_dp_MB",
		"Late-2/mpt-16g_total_MB": "late_mpt16_MB",
	})
}

func BenchmarkFig07CommScaling(b *testing.B) {
	reportFigure(b, figures.Fig07, map[string]string{
		"dp_MB_p256":           "dp_MB",
		"mpt_MB_p256":          "mpt_MB",
		"dyn_vs_mpt_reduction": "dyn_redux_x", // paper: 1.4x
	})
}

func BenchmarkFig12ActPrediction(b *testing.B) {
	reportFigure(b, figures.Fig12, map[string]string{
		"cifar_gather2D":    "cifar_2d_skip", // paper headline: 34.0% traffic cut
		"cifar_gather1D":    "cifar_1d_skip", // paper headline: 78.1% traffic cut
		"imagenet_gather2D": "imagenet_2d_skip",
		"imagenet_gather1D": "imagenet_1d_skip",
	})
}

func BenchmarkFig14ModifiedJoin(b *testing.B) {
	reportFigure(b, figures.Fig14, map[string]string{
		"max_loss_diff": "max_loss_diff", // paper: same accuracy → ~0
	})
}

func BenchmarkFig15LayerTimeEnergy(b *testing.B) {
	reportFigure(b, figures.Fig15, map[string]string{
		"avg_speedup_wmpfull":  "wmpfull_speedup_x", // paper: 2.74x
		"mid_speedup_wmppred":  "mid_wmppred_x",     // paper: 2.24x
		"late_speedup_wmppred": "late_wmppred_x",    // paper: 4.54x
	})
}

func BenchmarkFig16WeightSize(b *testing.B) {
	reportFigure(b, figures.Fig16, map[string]string{
		"3x3_w_mp++": "mean3x3_x", // paper: 2.74x
		"5x5_w_mp++": "mean5x5_x", // paper: 3.03x (see EXPERIMENTS.md)
	})
}

func BenchmarkFig17FullCNN(b *testing.B) {
	reportFigure(b, figures.Fig17, map[string]string{
		"avg_wdp_speedup":       "wdp_vs_1ndp_x",     // paper: 71x
		"avg_wmpfull_speedup":   "wmpfull_vs_1ndp_x", // paper: 191x
		"avg_wmpfull_over_wdp":  "wmpfull_vs_wdp_x",  // paper: 2.7x
		"avg_wmpfull_over_8gpu": "wmpfull_vs_8gpu_x", // paper: 21.6x
	})
}

func BenchmarkFig18IsoPower(b *testing.B) {
	reportFigure(b, figures.Fig18, map[string]string{
		"avg_perf_ratio": "perf_x",
		"avg_ppw_ratio":  "perf_per_watt_x", // paper: 9.5x
	})
}

// BenchmarkNoCCollective measures the flit-level ring all-reduce and
// reports its overhead over the analytic bandwidth bound.
func BenchmarkNoCCollective(b *testing.B) {
	const workers, msg = 16, 64 * 1024
	g := topology.Ring(workers)
	members := make([]int, workers)
	for i := range members {
		members[i] = i
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		n := noc.New(g, noc.DefaultConfig())
		st, err := n.Run(&noc.RingCollective{Members: members, Bytes: msg}, 50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	bound := 2.0 * float64(msg) * float64(workers-1) / float64(workers) / 30.0
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(float64(cycles)/bound, "vs_bw_bound_x")
}

// BenchmarkNoCAllToAll measures FBFLY tile-transfer traffic and reports
// the congestion factor that calibrates sim.System.TileCongestion.
func BenchmarkNoCAllToAll(b *testing.B) {
	g := topology.FBFly2D(4)
	members := make([]int, 16)
	for i := range members {
		members[i] = i
	}
	const pair = 4 * 1024
	var cycles int64
	for i := 0; i < b.N; i++ {
		n := noc.New(g, noc.DefaultConfig())
		st, err := n.Run(&noc.AllToAll{Members: members, Bytes: pair}, 50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	bound := float64(15*pair) * 1.6 / 60.0
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(float64(cycles)/bound, "vs_hop_bound_x")
}

// --- numeric kernel micro-benchmarks (the actual Go implementations) ---

func kernelSetup() (conv.Params, *tensor.Tensor, *tensor.Tensor) {
	p := conv.Params{In: 16, Out: 16, K: 3, Pad: 1, H: 32, W: 32}
	rng := tensor.NewRNG(1)
	x := tensor.New(4, p.In, p.H, p.W)
	w := tensor.New(p.Out, p.In, 3, 3)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, p.In*9)
	return p, x, w
}

func BenchmarkKernelDirectFprop(b *testing.B) {
	p, x, w := kernelSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Fprop(p, x, w)
	}
}

func BenchmarkKernelIm2colFprop(b *testing.B) {
	p, x, w := kernelSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.FpropIm2col(p, x, w)
	}
}

func BenchmarkKernelWinogradFprop(b *testing.B) {
	p, x, w := kernelSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		winograd.Fprop(winograd.F4x4_3x3, p, x, w)
	}
}

func BenchmarkKernelWinogradUpdateGrad(b *testing.B) {
	p, x, w := kernelSetup()
	y := conv.Fprop(p, x, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		winograd.UpdateGrad(winograd.F2x2_3x3, p, x, y)
	}
}

func BenchmarkKernelQuantize(b *testing.B) {
	q := quant.MustQuantizer(4, 6, 1)
	rng := tensor.NewRNG(2)
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	qv := make([]float32, len(vals))
	res := make([]float32, len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.QuantizeSlice(vals, qv, res)
	}
}

// --- DESIGN.md §5 ablations ---

// BenchmarkAblationClusteringMenu compares per-layer time under each fixed
// clustering against the dynamic choice, for the layer classes where the
// menu matters most.
func BenchmarkAblationClusteringMenu(b *testing.B) {
	s := sim.DefaultSystem()
	layers := model.FiveLayers()
	var early16, earlyDyn, late1, lateDyn float64
	for i := 0; i < b.N; i++ {
		early16 = s.SimulateLayer(layers[0], 256, sim.WMp).TotalSec()
		earlyDyn = s.SimulateLayer(layers[0], 256, sim.WMpDyn).TotalSec()
		late1 = s.SimulateLayer(layers[4], 256, sim.WDp).TotalSec()
		lateDyn = s.SimulateLayer(layers[4], 256, sim.WMpDyn).TotalSec()
	}
	b.ReportMetric(early16/earlyDyn, "early_fixed16_vs_dyn_x")
	b.ReportMetric(late1/lateDyn, "late_ng1_vs_dyn_x")
}

// BenchmarkAblationPrediction isolates the activation-prediction gain on
// the layer where tile transfer dominates.
func BenchmarkAblationPrediction(b *testing.B) {
	s := sim.DefaultSystem()
	l := model.FiveLayers()[1]
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = s.SimulateLayer(l, 256, sim.WMp).TotalSec()
		on = s.SimulateLayer(l, 256, sim.WMpPred).TotalSec()
	}
	b.ReportMetric(off/on, "prediction_gain_x")
}

// BenchmarkAblationQuantizerRegions sweeps the non-uniform quantizer's
// region count at fixed bits and reports the 1-D line-skip ratio — the
// design choice Fig. 10/12 motivate (4 regions fit the Gaussian best).
func BenchmarkAblationQuantizerRegions(b *testing.B) {
	tr := winograd.F2x2_3x3
	p := conv.Params{In: 4, Out: 8, K: 3, Pad: 1, H: 16, W: 16}
	rng := tensor.NewRNG(9)
	tl, err := winograd.NewTiling(tr, p)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(4, p.In, p.H, p.W)
	w := tensor.New(p.Out, p.In, 3, 3)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, p.In*9)
	xd := tl.TransformInput(x)
	wd := winograd.TransformWeights(tr, w)
	yd := winograd.MulForward(xd, wd, nil)
	var sample []float32
	for _, el := range yd.El {
		sample = append(sample, el.Data...)
	}
	sigma := quant.EstimateSigma(sample)
	yd.AddOutputBias(-0.7 * sigma)

	ratios := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, regions := range []int{1, 2, 4} {
			q := quant.MustQuantizer(regions, 5, sigma)
			pr := quant.NewPredictor(tr, q)
			st := quant.MeasureGather(yd, pr, pr)
			if st.FalseNegatives != 0 {
				b.Fatalf("regions=%d produced false negatives", regions)
			}
			ratios[regions] = st.LineSkipRatio()
		}
	}
	for _, regions := range []int{1, 2, 4} {
		b.ReportMetric(ratios[regions], "lineskip_r"+string(rune('0'+regions)))
	}
}

// BenchmarkAblationChunkSize sweeps the collective packet size: large
// chunks amortize SerDes, tiny chunks bloat the pipeline-fill term (the
// paper picked 256 B).
func BenchmarkAblationChunkSize(b *testing.B) {
	l := model.FiveLayers()[4]
	var t64, t256, t4096 float64
	for i := 0; i < b.N; i++ {
		for _, cs := range []struct {
			bytes int
			out   *float64
		}{{64, &t64}, {256, &t256}, {4096, &t4096}} {
			s := sim.DefaultSystem()
			s.ChunkBytes = cs.bytes
			*cs.out = s.SimulateLayer(l, 256, sim.WMp).BackwardSec
		}
	}
	b.ReportMetric(t64/t256, "chunk64_vs_256_x")
	b.ReportMetric(t4096/t256, "chunk4096_vs_256_x")
}

// BenchmarkAblationWorkerScaling reports w_dp vs w_mp++ scalability across
// worker counts — the trend behind Fig. 7/17.
func BenchmarkAblationWorkerScaling(b *testing.B) {
	net := model.ResNet34()
	var r64, r256 float64
	for i := 0; i < b.N; i++ {
		for _, pw := range []struct {
			p   int
			out *float64
		}{{64, &r64}, {256, &r256}} {
			s := sim.DefaultSystem()
			s.Workers = pw.p
			dp := s.SimulateNetwork(net, sim.WDp)
			full := s.SimulateNetwork(net, sim.WMpFull)
			*pw.out = dp.IterationSec / full.IterationSec
		}
	}
	b.ReportMetric(r64, "gain_p64_x")
	b.ReportMetric(r256, "gain_p256_x")
}

// BenchmarkCommModel exercises the closed-form volume model (it should be
// effectively free — the paper precomputes it per layer at configuration
// time).
func BenchmarkCommModel(b *testing.B) {
	l := model.FiveLayers()[2]
	st := comm.Strategy{Ng: 16, Nc: 16, Winograd: true}
	for i := 0; i < b.N; i++ {
		comm.LayerVolumes(winograd.F2x2_3x3, l.P, 256, st)
	}
}

// BenchmarkAblationAdaptiveRouting compares deterministic vs randomized
// minimal first-hop routing on the FBFLY all-to-all — the path-diversity
// knob the flattened-butterfly literature motivates.
func BenchmarkAblationAdaptiveRouting(b *testing.B) {
	members := make([]int, 16)
	for i := range members {
		members[i] = i
	}
	run := func(random bool) int64 {
		cfg := noc.DefaultConfig()
		cfg.RandomFirstHop = random
		cfg.Seed = 7
		n := noc.New(topology.FBFly2D(4), cfg)
		st, err := n.Run(&noc.AllToAll{Members: members, Bytes: 4096}, 50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		return st.Cycles
	}
	var det, rnd int64
	for i := 0; i < b.N; i++ {
		det = run(false)
		rnd = run(true)
	}
	b.ReportMetric(float64(det), "deterministic_cycles")
	b.ReportMetric(float64(rnd), "randomized_cycles")
	b.ReportMetric(float64(det)/float64(rnd), "adaptive_gain_x")
}

// BenchmarkCosimValidation runs the detailed-mode co-simulation (per-worker
// NDP pipelines + flit-level network) of a (4,4) MPT layer and reports its
// agreement with the event-driven phase model — the justification for
// running Figs. 15-18 on the phase model at p=256.
func BenchmarkCosimValidation(b *testing.B) {
	spec := cosim.Spec{
		Tr:    winograd.F2x2_3x3,
		P:     conv.Params{In: 32, Out: 32, K: 3, Pad: 1, H: 8, W: 8},
		Batch: 16,
		Ng:    4,
		Nc:    4,
		NDP:   ndp.DefaultConfig(),
		Net:   noc.DefaultConfig(),
	}
	var cycles int64
	var ratio float64
	for i := 0; i < b.N; i++ {
		c, err := cosim.New(spec)
		if err != nil {
			b.Fatal(err)
		}
		r, err := c.Run(50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Cycles
		sys := sim.DefaultSystem()
		sys.Workers = spec.Ng * spec.Nc
		pr := sys.SimulateLayer(model.Layer{Name: "cosim", P: spec.P}, spec.Batch, sim.WMp)
		ratio = r.Seconds / pr.TotalSec()
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(ratio, "vs_phase_model_x")
}

// --- blocked-GEMM and allocation-free steady-state benchmarks ---
//
// The GEMM shapes mirror the Fig. 7 per-element dot product: each of the
// T² element matmuls is (B·tiles)×C · C×Out. At the Fig. 7 scale that is
// M=4096, K=64, N=64 — squarely in the blocked kernel's regime. The
// steady-state layer benchmarks gate the tentpole's allocation contract:
// after warm-up, fprop/bprop/updateGrad must report 0 allocs/op
// (cmd/benchdiff fails the run if a zero-alloc baseline regresses).

const gemmBenchM, gemmBenchK, gemmBenchN = 4096, 64, 64

func gemmBenchSetup() (dst, a, b2, bt *tensor.Mat) {
	rng := tensor.NewRNG(3)
	a = tensor.NewMat(gemmBenchM, gemmBenchK)
	b2 = tensor.NewMat(gemmBenchK, gemmBenchN)
	fill := func(m *tensor.Mat) {
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64())
		}
	}
	fill(a)
	fill(b2)
	bt = b2.T()
	return tensor.NewMat(gemmBenchM, gemmBenchN), a, b2, bt
}

func BenchmarkGemmNaive(b *testing.B) {
	dst, a, bm, _ := gemmBenchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulNaiveInto(dst, a, bm)
	}
}

func BenchmarkGemmBlocked(b *testing.B) {
	dst, a, bm, _ := gemmBenchSetup()
	var s tensor.GemmScratch
	tensor.MatMulIntoScratch(dst, a, bm, &s) // size the packing buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulIntoScratch(dst, a, bm, &s)
	}
}

func BenchmarkGemmNT(b *testing.B) {
	dst, a, _, bt := gemmBenchSetup()
	var s tensor.GemmScratch
	tensor.MatMulNTIntoScratch(dst, a, bt, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulNTIntoScratch(dst, a, bt, &s)
	}
}

func BenchmarkGemmTN(b *testing.B) {
	// TN is the update-grad shape dW = Xᵀ·dY: both operands share the long
	// K = B·tiles dimension (4096 here), producing a C×Out result.
	_, x, _, _ := gemmBenchSetup()
	rng := tensor.NewRNG(7)
	dy := tensor.NewMat(gemmBenchM, gemmBenchN)
	for i := range dy.Data {
		dy.Data[i] = float32(rng.NormFloat64())
	}
	dst := tensor.NewMat(gemmBenchK, gemmBenchN)
	var s tensor.GemmScratch
	tensor.MatMulTNIntoScratch(dst, x, dy, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTNIntoScratch(dst, x, dy, &s)
	}
}

// steadyLayerSetup builds a warm F(4,3) layer at the kernel benchmark
// geometry with worker count pinned to 1 (the closure-free sequential
// path the zero-alloc contract covers). Callers must restore workers.
func steadyLayerSetup(b *testing.B) (l *winograd.Layer, x, y, dy, dx *tensor.Tensor, dw *winograd.Weights, restore func()) {
	prev := parallel.SetDefaultWorkers(1)
	restore = func() { parallel.SetDefaultWorkers(prev) }
	p, xs, w := kernelSetup()
	var err error
	l, err = winograd.NewLayerWithWeights(winograd.F4x4_3x3, p, w)
	if err != nil {
		b.Fatal(err)
	}
	x = xs
	y = tensor.New(x.N, p.Out, p.OutH(), p.OutW())
	dy = tensor.New(x.N, p.Out, p.OutH(), p.OutW())
	rng := tensor.NewRNG(4)
	rng.FillNormal(dy, 0, 1)
	dx = tensor.New(x.N, p.In, p.H, p.W)
	dw = winograd.NewWeights(winograd.F4x4_3x3, p.In, p.Out)
	// Warm up so arenas, GEMM panels, and cached domains are sized.
	l.FpropInto(y, x)
	l.BpropInto(dx, dy)
	l.UpdateGradWInto(dw, dy)
	return l, x, y, dy, dx, dw, restore
}

func BenchmarkLayerFpropSteady(b *testing.B) {
	l, x, y, _, _, _, restore := steadyLayerSetup(b)
	defer restore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.FpropInto(y, x)
	}
}

func BenchmarkLayerBpropSteady(b *testing.B) {
	l, _, _, dy, dx, _, restore := steadyLayerSetup(b)
	defer restore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.BpropInto(dx, dy)
	}
}

func BenchmarkLayerUpdateGradSteady(b *testing.B) {
	l, _, _, dy, _, dw, restore := steadyLayerSetup(b)
	defer restore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.UpdateGradWInto(dw, dy)
	}
}

// The *SteadyTelemetry twins run the same hot loops with a live metrics
// registry attached to the engine-level hooks, proving the enabled path
// is also allocation-free (the benchdiff zero-alloc gate covers them like
// their twins; benchdiff additionally prints the wall-time ratio against
// the detached twin as an informational overhead report). The counted
// GEMM work is reported as a deterministic model metric.
func attachTelemetry() (*telemetry.Registry, func()) {
	reg := telemetry.NewRegistry()
	tensor.Attach(reg)
	parallel.Attach(reg)
	return reg, func() {
		tensor.Attach(nil)
		parallel.Attach(nil)
	}
}

func benchSteadyTelemetry(b *testing.B, step func(l *winograd.Layer, x, y, dy, dx *tensor.Tensor, dw *winograd.Weights)) {
	reg, detach := attachTelemetry()
	defer detach()
	l, x, y, dy, dx, dw, restore := steadyLayerSetup(b)
	defer restore()
	flops := reg.Counter("tensor.gemm_flops")
	start := flops.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(l, x, y, dy, dx, dw)
	}
	b.StopTimer()
	b.ReportMetric(float64(flops.Load()-start)/float64(b.N), "gemm_flops/op")
}

func BenchmarkLayerFpropSteadyTelemetry(b *testing.B) {
	benchSteadyTelemetry(b, func(l *winograd.Layer, x, y, _, _ *tensor.Tensor, _ *winograd.Weights) {
		l.FpropInto(y, x)
	})
}

func BenchmarkLayerBpropSteadyTelemetry(b *testing.B) {
	benchSteadyTelemetry(b, func(l *winograd.Layer, _, _, dy, dx *tensor.Tensor, _ *winograd.Weights) {
		l.BpropInto(dx, dy)
	})
}

func BenchmarkLayerUpdateGradSteadyTelemetry(b *testing.B) {
	benchSteadyTelemetry(b, func(l *winograd.Layer, _, _, dy, _ *tensor.Tensor, dw *winograd.Weights) {
		l.UpdateGradWInto(dw, dy)
	})
}

// BenchmarkTransformFused / BenchmarkTransformGeneric compare the compiled
// sparse-schedule input transform against the generic allocation-free
// fallback on the same F(4,3) tiles (a literal-constructed Transform has
// no compiled schedules, so it exercises the fallback path).
func BenchmarkTransformFused(b *testing.B) {
	benchInputTransform(b, winograd.F4x4_3x3)
}

func BenchmarkTransformGeneric(b *testing.B) {
	src := winograd.F4x4_3x3
	benchInputTransform(b, &winograd.Transform{M: src.M, R: src.R, T: src.T,
		G: src.G, BT: src.BT, AT: src.AT, B: src.B, A: src.A, GT: src.GT})
}

func benchInputTransform(b *testing.B, tr *winograd.Transform) {
	rng := tensor.NewRNG(6)
	x := tensor.NewMat(tr.T, tr.T)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	dst := tensor.NewMat(tr.T, tr.T)
	tmp := make([]float32, tr.TmpLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InputToWinogradInto(dst, x, tmp)
	}
}
