// Command mpttrace analyzes the deterministic cycle-domain traces the
// simulator emits (mptsim -trace) together with their metrics snapshots
// (mptsim -metrics-json): it reconstructs per-lane timelines and the
// critical path, attributes time to compute / communication / idle, joins
// the planner's achieved-vs-bound traffic gauges, and gates model-time
// regressions exactly.
//
// Usage:
//
//	mpttrace report [-metrics m.json] [-format text|json|html] [-top 5] [-o out] trace.json
//	mpttrace diff [-metrics-a a.json] [-metrics-b b.json] [-max-delta-cycles N] [-max-delta-frac F] [-exact] a.json b.json
//	mpttrace check [-metrics m.json] [-min-overlap F] [-max-idle F] [-max-bound-ratio F] [-max-critical-cycles N] trace.json
//
// Every input is byte-stable for a fixed simulation (simulated cycles,
// never wall clock), so reports are bit-identical across runs and host
// worker counts, `diff` can gate with zero tolerance (exit 1 on any
// regression; -exact fails on any difference at all), and `check` turns
// overlap/idle/bound claims into CI assertions.
//
// Exit codes: 0 success, 1 regression or failed assertion, 2 usage or I/O
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mptwino/internal/traceview"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "report":
		cmdReport(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mpttrace: unknown subcommand %q (report, diff, check)\n", os.Args[1])
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mpttrace report [-metrics m.json] [-format text|json|html] [-top 5] [-o out] trace.json
  mpttrace diff [-metrics-a a.json] [-metrics-b b.json] [-max-delta-cycles N] [-max-delta-frac F] [-exact] a.json b.json
  mpttrace check [-metrics m.json] [-min-overlap F] [-max-idle F] [-max-bound-ratio F] [-max-critical-cycles N] trace.json`)
	os.Exit(2)
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	metricsPath := fs.String("metrics", "", "metrics snapshot JSON (mptsim -metrics-json) to join planner gauges from")
	format := fs.String("format", "text", "output format: text, json, or html (self-contained timeline + flame view)")
	top := fs.Int("top", 5, "critical-path contributors to list per lane")
	out := fs.String("o", "-", "output file ('-' = stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "mpttrace report: exactly one trace file required")
		os.Exit(2)
	}

	run := loadRun(fs.Arg(0), *metricsPath)
	rep := traceview.Analyze(run, traceview.Options{TopK: *top})

	w, closeFn := openOut(*out)
	defer closeFn()
	var err error
	switch *format {
	case "text":
		err = rep.WriteText(w)
	case "json":
		err = rep.WriteJSON(w)
	case "html":
		err = traceview.WriteHTML(w, run, rep)
	default:
		fmt.Fprintf(os.Stderr, "mpttrace report: unknown -format %q (text, json, html)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	metricsA := fs.String("metrics-a", "", "metrics snapshot JSON for run A")
	metricsB := fs.String("metrics-b", "", "metrics snapshot JSON for run B")
	maxCycles := fs.Int64("max-delta-cycles", 0, "allowed absolute model-time increase per metric")
	maxFrac := fs.Float64("max-delta-frac", 0, "allowed relative increase per metric (0.02 = +2%)")
	exact := fs.Bool("exact", false, "fail on any difference, improvements included (golden-gate mode)")
	out := fs.String("o", "-", "output file ('-' = stdout)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "mpttrace diff: exactly two trace files required (a.json b.json)")
		os.Exit(2)
	}

	repA := traceview.Analyze(loadRun(fs.Arg(0), *metricsA), traceview.Options{})
	repB := traceview.Analyze(loadRun(fs.Arg(1), *metricsB), traceview.Options{})
	d := traceview.Diff(repA, repB, traceview.DiffOptions{
		MaxDeltaCycles: *maxCycles, MaxDeltaFrac: *maxFrac, Exact: *exact,
	})

	w, closeFn := openOut(*out)
	if err := d.WriteText(w); err != nil {
		closeFn()
		fail(err)
	}
	closeFn()
	if d.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "mpttrace diff: %d regression(s)\n", d.Regressions)
		os.Exit(1)
	}
}

func cmdCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	metricsPath := fs.String("metrics", "", "metrics snapshot JSON to join planner gauges from")
	a := traceview.Unset()
	fs.Float64Var(&a.MinOverlap, "min-overlap", a.MinOverlap, "require comm-hidden-by-compute overlap ≥ this fraction in every phase lane (-1 = off)")
	fs.Float64Var(&a.MaxIdle, "max-idle", a.MaxIdle, "cap the idle share of every phase lane (-1 = off)")
	fs.Float64Var(&a.MaxBoundRatio, "max-bound-ratio", a.MaxBoundRatio, "cap every planned layer's achieved/bound byte ratio (-1 = off)")
	fs.Int64Var(&a.MaxCriticalCycles, "max-critical-cycles", a.MaxCriticalCycles, "cap every phase lane's critical-path cycles (-1 = off)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "mpttrace check: exactly one trace file required")
		os.Exit(2)
	}
	if !a.Any() {
		fmt.Fprintln(os.Stderr, "mpttrace check: no assertions enabled (see -h)")
		os.Exit(2)
	}

	rep := traceview.Analyze(loadRun(fs.Arg(0), *metricsPath), traceview.Options{})
	fails := traceview.Check(rep, a)
	for _, f := range fails {
		fmt.Fprintln(os.Stderr, "FAIL:", f)
	}
	if len(fails) > 0 {
		os.Exit(1)
	}
	fmt.Println("mpttrace check: all assertions hold")
}

// loadRun parses the trace and (optionally) its metrics snapshot.
func loadRun(tracePath, metricsPath string) *traceview.Run {
	f, err := os.Open(tracePath)
	if err != nil {
		fail(err)
	}
	run, err := traceview.ParseTrace(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if metricsPath != "" {
		mf, err := os.Open(metricsPath)
		if err != nil {
			fail(err)
		}
		m, err := traceview.LoadMetrics(mf)
		mf.Close()
		if err != nil {
			fail(err)
		}
		run.Metrics = m
	}
	return run
}

// openOut resolves '-' to stdout, anything else to a created file.
func openOut(path string) (io.Writer, func()) {
	if path == "" || path == "-" {
		return os.Stdout, func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	return f, func() {
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mpttrace:", err)
	os.Exit(2)
}
