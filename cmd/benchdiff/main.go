// Command benchdiff runs the repository's benchmark suite, captures ns/op,
// allocations, and every custom b.ReportMetric value (the paper's headline
// numbers) into a JSON snapshot, and diffs that snapshot against a committed
// baseline for CI gating.
//
// Two classes of measurement get two policies (see EXPERIMENTS.md §tolerance):
//
//   - Model metrics (dp_MB, wmpfull_speedup_x, ...) are outputs of a
//     deterministic simulator: they must match the baseline to within a tiny
//     formatting tolerance (-mtol, default 1e-3 relative) on any machine.
//     A drift here means the model changed, and the gate fails.
//   - Wall-clock numbers (ns/op, B/op) are machine-dependent: they are
//     recorded for trend tracking and printed in the diff, but only gate
//     when -gate-times is set (CI does this on the fixed runner class,
//     with the generous -tol, default 4x, to ride out runner noise).
//   - Zero-alloc contracts are machine-independent: any benchmark whose
//     baseline records 0 allocs/op must still report 0, on any machine
//     (-gate-allocs, on by default). The steady-state layer benchmarks
//     rely on this to keep the hot paths allocation-free.
//
// Usage:
//
//	go run ./cmd/benchdiff -update            # (re)record bench/BENCH_baseline.json
//	go run ./cmd/benchdiff                    # run, write BENCH_<date>.json, diff vs baseline
//	go run ./cmd/benchdiff -gate-times        # also fail on wall-time regressions
//	go run ./cmd/benchdiff -serial            # extra workers=1 pass; record parallel speedup
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"mptwino/internal/tensor"
)

// Bench is one benchmark's captured measurements.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// SpeedupVsSerial is parallel ns/op over the MPTWINO_WORKERS=1 pass for
	// the same benchmark; only present under -serial.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// Snapshot is one benchdiff run: environment plus all benchmarks.
type Snapshot struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	GemmKernel string           `json:"gemm_kernel,omitempty"`
	CPUFeature string           `json:"cpu_features,omitempty"`
	BenchTime  string           `json:"benchtime"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	var (
		benchRe    = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchTime  = flag.String("benchtime", "1x", "go test -benchtime value")
		baseline   = flag.String("baseline", "bench/BENCH_baseline.json", "baseline snapshot to diff against")
		outDir     = flag.String("outdir", "bench", "directory for the dated snapshot")
		update     = flag.Bool("update", false, "rewrite the baseline from this run instead of diffing")
		mtol       = flag.Float64("mtol", 1e-3, "relative tolerance for model metrics (machine-independent)")
		tol        = flag.Float64("tol", 4.0, "allowed wall-time ratio vs baseline when -gate-times is set")
		gateTimes  = flag.Bool("gate-times", false, "fail on ns/op or allocs/op regressions beyond -tol")
		gateAllocs = flag.Bool("gate-allocs", true, "fail when a zero-allocs/op baseline benchmark allocates")
		serial     = flag.Bool("serial", false, "run a second pass with MPTWINO_WORKERS=1 and record parallel speedup")
	)
	flag.Parse()

	snap, err := capture(*benchRe, *benchTime, nil)
	if err != nil {
		fatal(err)
	}
	if *serial {
		seq, err := capture(*benchRe, *benchTime, []string{"MPTWINO_WORKERS=1"})
		if err != nil {
			fatal(err)
		}
		for name, b := range snap.Benchmarks {
			if s, ok := seq.Benchmarks[name]; ok && b.NsPerOp > 0 {
				b.SpeedupVsSerial = s.NsPerOp / b.NsPerOp
				snap.Benchmarks[name] = b
			}
		}
	}

	if *update {
		if err := writeJSON(*baseline, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: baseline %s updated (%d benchmarks)\n", *baseline, len(snap.Benchmarks))
		return
	}

	out := filepath.Join(*outDir, "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
	if err := writeJSON(out, snap); err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: snapshot written to %s (%d benchmarks)\n", out, len(snap.Benchmarks))

	base, err := readJSON(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("benchdiff: no baseline at %s; run with -update to record one\n", *baseline)
			return
		}
		fatal(err)
	}
	// Model metrics are only comparable between runs on the same GEMM
	// dispatch tier: the fused `fma` tier rounds differently by design, and
	// wall-time baselines recorded on one tier gate meaninglessly against
	// another. Refuse rather than report bogus drift.
	if base.GemmKernel != "" && base.GemmKernel != snap.GemmKernel {
		fmt.Printf("benchdiff: FAIL — baseline recorded on gemm tier %q (cpu %s) but this run dispatched %q (cpu %s)\n",
			base.GemmKernel, base.CPUFeature, snap.GemmKernel, snap.CPUFeature)
		fmt.Printf("  hint: force the baseline tier with %s=%s, or re-record with `go run ./cmd/benchdiff -update`\n",
			tensor.EnvGemmKernel, base.GemmKernel)
		os.Exit(1)
	}
	reportTelemetryOverhead(snap)
	failures, missing := diff(base, snap, *benchRe, *mtol, *tol, *gateTimes, *gateAllocs)
	if missing > 0 {
		fmt.Printf("benchdiff: FAIL — %d baseline benchmark(s) absent from this run: deleted or renamed? re-record the baseline with `go run ./cmd/benchdiff -update`\n", missing)
	}
	if failures > 0 {
		fmt.Printf("benchdiff: FAIL — %d regression(s) vs %s\n", failures, *baseline)
	}
	if failures+missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — model metrics within %.3g and zero-alloc contracts hold vs %s\n", *mtol, *baseline)
}

// reportTelemetryOverhead prints the wall-time ratio of every
// <Name>Telemetry benchmark against its detached <Name> twin. The report
// is informational only — wall time is machine noise at 1x benchtime; the
// enforced telemetry contract is the twins' zero-alloc gate and their
// deterministic model metrics.
func reportTelemetryOverhead(snap *Snapshot) {
	names := make([]string, 0, len(snap.Benchmarks))
	for n := range snap.Benchmarks {
		if strings.HasSuffix(n, "Telemetry") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		twin := strings.TrimSuffix(n, "Telemetry")
		b, ok := snap.Benchmarks[twin]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		t := snap.Benchmarks[n]
		fmt.Printf("  telemetry overhead %-28s %.3gms -> %.3gms (%.2fx)\n",
			twin, b.NsPerOp/1e6, t.NsPerOp/1e6, t.NsPerOp/b.NsPerOp)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// capture runs the bench suite once and parses every benchmark line.
func capture(benchRe, benchTime string, extraEnv []string) (*Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem", "-benchtime", benchTime, "."}
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Printf("benchdiff: go %s  %s\n", strings.Join(args, " "), strings.Join(extraEnv, " "))
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("bench run failed: %w\n%s", err, buf.String())
	}
	snap := &Snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		// This process and the `go test` child share the environment, so
		// the tier the tensor package dispatched to here is the tier the
		// benchmarks ran on (DESIGN.md §13).
		GemmKernel: tensor.GemmKernel(),
		CPUFeature: tensor.CPUFeatures(),
		BenchTime:  benchTime,
		Benchmarks: map[string]Bench{},
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, b, ok := parseBenchLine(sc.Text())
		if ok {
			snap.Benchmarks[name] = b
		}
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched -bench %q", benchRe)
	}
	return snap, sc.Err()
}

// parseBenchLine parses one `go test -bench` output line:
//
//	BenchmarkFig07CommScaling-8   1   123456 ns/op   5.2 dp_MB   0 B/op   3 allocs/op
//
// returning the trimmed name and its value/unit pairs.
func parseBenchLine(line string) (string, Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Bench{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	b := Bench{Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Bench{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			// machine-dependent; ns/op already covers it
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return name, b, b.NsPerOp > 0
}

// diff compares snap against base and prints a report; it returns the
// number of gating failures and, separately, the number of baseline
// benchmarks the run no longer produced. A missing name is its own
// failure class — it usually means a benchmark was deleted or renamed
// without re-recording the baseline, and silently dropping it would let
// its metric gates rot. Baseline entries outside the -bench regex are
// skipped, not missing: the run never asked for them.
func diff(base, snap *Snapshot, benchRe string, mtol, tol float64, gateTimes, gateAllocs bool) (failures, missing int) {
	re, err := regexp.Compile(benchRe)
	if err != nil {
		// go test would have rejected it before any output; be safe.
		re = regexp.MustCompile(".")
	}
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	allocFailures := 0
	for _, n := range names {
		b := base.Benchmarks[n]
		s, ok := snap.Benchmarks[n]
		if !ok {
			if !re.MatchString("Benchmark" + n) {
				continue // filtered out by -bench, not gone
			}
			fmt.Printf("  MISSING %-32s present in baseline, absent in run\n", n)
			missing++
			continue
		}
		// Model metrics: deterministic simulator outputs, gated strictly.
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			want := b.Metrics[k]
			got, ok := s.Metrics[k]
			if !ok {
				fmt.Printf("  MISSING %-32s metric %q gone\n", n, k)
				failures++
				continue
			}
			if !within(got, want, mtol) {
				fmt.Printf("  DRIFT   %-32s %-24s %.6g -> %.6g (%.2f%%)\n",
					n, k, want, got, 100*(got-want)/nonzero(want))
				failures++
			}
		}
		// Zero-alloc contract: machine-independent, gated strictly. A
		// baseline of 0 allocs/op is a design guarantee (steady-state hot
		// paths), not a measurement, so any alloc at all is a regression.
		if gateAllocs && b.AllocsPerOp == 0 && s.AllocsPerOp > 0 {
			fmt.Printf("  ALLOC   %-32s 0 allocs/op baseline now %.0f allocs/op (%.0f B/op)\n",
				n, s.AllocsPerOp, s.BytesPerOp)
			failures++
			allocFailures++
		}
		// Wall times: informational unless gating is requested.
		if b.NsPerOp > 0 {
			ratio := s.NsPerOp / b.NsPerOp
			mark := "  "
			if gateTimes && ratio > tol {
				mark = "!!"
				failures++
			}
			fmt.Printf("  %s time %-32s %.3gms -> %.3gms (%.2fx)", mark, n, b.NsPerOp/1e6, s.NsPerOp/1e6, ratio)
			if gateTimes && b.AllocsPerOp > 0 && s.AllocsPerOp > tol*b.AllocsPerOp {
				fmt.Printf("  allocs %.0f -> %.0f !!", b.AllocsPerOp, s.AllocsPerOp)
				failures++
			}
			if s.SpeedupVsSerial > 0 {
				fmt.Printf("  parallel speedup %.2fx", s.SpeedupVsSerial)
			}
			fmt.Println()
		}
	}
	if allocFailures > 0 {
		// The static half of this gate usually names the offending line:
		// allocflow walks the cross-package call graph from every *Into /
		// //mptlint:noalloc root, so it also catches the allocating helper
		// two hops away that the benchmark only sees as a count
		// (DESIGN.md §9/§14).
		fmt.Printf("  hint: run `go run ./cmd/mptlint -run allocflow ./...` to locate the allocation statically\n")
	}
	return failures, missing
}

func within(got, want, rel float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	w := want
	if w < 0 {
		w = -w
	}
	if w < 1e-12 {
		return d < 1e-12 || d <= rel
	}
	return d <= rel*w
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

func writeJSON(path string, s *Snapshot) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readJSON(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}
