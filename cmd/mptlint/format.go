package main

// Machine-readable output. -format=json is the stable scripting surface
// (one object per finding); -format=sarif emits minimal SARIF 2.1.0 —
// enough for GitHub code-scanning upload and PR annotation — with one
// reporting rule per analyzer so findings group by invariant in the UI.

import (
	"encoding/json"
	"io"

	"mptwino/internal/lint"
)

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func printJSON(w io.Writer, wd string, diags []lint.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			Analyzer: d.Analyzer,
			File:     relPath(wd, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — only the fields the GitHub upload path reads.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func printSARIF(w io.Writer, wd string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	// The suppression layer reports under its own rule id.
	rules = append(rules, sarifRule{ID: "nolint", ShortDescription: sarifText{
		Text: "nolint directive hygiene: mandatory reasons, no stale suppressions",
	}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(wd, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mptlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
