// Command mptlint runs the repo's invariant analyzers (internal/lint)
// over a set of package patterns and exits non-zero on any finding. It is
// fully offline — types come from `go list -export` build-cache export
// data, not from downloaded tools — so `make lint` and `make verify` work
// on an air-gapped machine.
//
// Usage:
//
//	go run ./cmd/mptlint ./...            # whole repo, all analyzers
//	go run ./cmd/mptlint -run allocflow ./internal/winograd
//	go run ./cmd/mptlint -format=sarif ./... > mptlint.sarif
//	go run ./cmd/mptlint -list            # describe the suite
//
// Findings print as file:line:col: message (analyzer) by default;
// -format=json emits a machine-readable array and -format=sarif emits
// SARIF 2.1.0 for code-scanning upload / PR annotation. Suppress a false
// positive with a reasoned directive on (or directly above) the line:
//
//	//nolint:mapiter -- keys are sorted on the next line
//
// The reason after " -- " is mandatory; a bare //nolint is itself an
// error, and a directive that suppresses nothing is reported as stale.
//
// Known findings that are accepted for now live in the committed baseline
// (lint/baseline.json by default): entries match on (analyzer, file,
// exact message) — line-independent, so unrelated edits don't churn it —
// and every entry carries a mandatory "why" justification. A baseline
// entry that no longer matches any finding fails the run until the
// baseline is regenerated with -update-baseline (which preserves the
// "why" of surviving entries). See DESIGN.md §9/§14.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mptwino/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runNames       = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list           = flag.Bool("list", false, "list the analyzers and exit")
		format         = flag.String("format", "text", "output format: text, json, or sarif")
		baselinePath   = flag.String("baseline", "lint/baseline.json", "baseline file of accepted findings (missing file = empty; \"\" disables)")
		updateBaseline = flag.Bool("update-baseline", false, "rewrite the baseline from the current findings (preserving existing justifications) and exit")
		cachePath      = flag.String("cache", "", "cache file for go list -export call-graph data (\"\" disables)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *runNames != "" {
		names = strings.Split(*runNames, ",")
	}
	analyzers := lint.ByName(names)
	if len(analyzers) == 0 {
		fmt.Fprintf(os.Stderr, "mptlint: no analyzer matches -run %q (try -list)\n", *runNames)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mptlint:", err)
		return 2
	}
	prog, err := lint.LoadCached(wd, *cachePath, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	diags := lint.Analyze(prog, analyzers)

	// //nolint directives are read from (and stale-checked in) the target
	// packages only: module-local dependencies of a partial pattern keep
	// their directives for the run that targets them. Stale detection for
	// wildcard directives needs the full suite (ran == nil).
	files := prog.TargetFiles()
	ran := names
	if *runNames == "" {
		ran = nil
	}
	diags = lint.ApplyNolint(prog.Fset, files, diags, ran)

	if *updateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "mptlint: -update-baseline needs -baseline")
			return 2
		}
		n, missing, err := writeBaseline(*baselinePath, wd, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mptlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "mptlint: baseline %s rewritten with %d entr%s\n", *baselinePath, n, plural(n, "y", "ies"))
		if missing > 0 {
			fmt.Fprintf(os.Stderr, "mptlint: %d new entr%s ha%s an empty \"why\" — fill in the justification before committing\n", missing, plural(missing, "y", "ies"), plural(missing, "s", "ve"))
		}
		return 0
	}

	var stale []baselineEntry
	if *baselinePath != "" {
		bl, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mptlint:", err)
			return 2
		}
		diags, stale, err = applyBaseline(wd, diags, bl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mptlint:", err)
			return 2
		}
	}

	switch *format {
	case "text":
		for _, d := range diags {
			fmt.Println(d)
		}
	case "json":
		if err := printJSON(os.Stdout, wd, diags); err != nil {
			fmt.Fprintln(os.Stderr, "mptlint:", err)
			return 2
		}
	case "sarif":
		if err := printSARIF(os.Stdout, wd, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "mptlint:", err)
			return 2
		}
	default:
		fmt.Fprintf(os.Stderr, "mptlint: unknown -format %q (text, json, sarif)\n", *format)
		return 2
	}

	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "mptlint: stale baseline entry: no %s finding in %s matches %q — regenerate with -update-baseline\n", e.Analyzer, e.File, e.Message)
	}
	if len(diags) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "mptlint: %d finding(s), %d stale baseline entr%s\n", len(diags), len(stale), plural(len(stale), "y", "ies"))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
