// Command mptlint runs the repo's invariant analyzers (internal/lint)
// over a set of package patterns and exits non-zero on any finding. It is
// fully offline — types come from `go list -export` build-cache export
// data, not from downloaded tools — so `make lint` and `make verify` work
// on an air-gapped machine.
//
// Usage:
//
//	go run ./cmd/mptlint ./...            # whole repo, all analyzers
//	go run ./cmd/mptlint -run noalloc ./internal/winograd
//	go run ./cmd/mptlint -list            # describe the suite
//
// Findings print as file:line:col: message (analyzer). Suppress a false
// positive with a reasoned directive on (or directly above) the line:
//
//	//nolint:mapiter -- keys are sorted on the next line
//
// The reason after " -- " is mandatory; a bare //nolint is itself an
// error. See DESIGN.md §9 for each analyzer's invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mptwino/internal/lint"
)

func main() {
	var (
		run  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var names []string
	if *run != "" {
		names = strings.Split(*run, ",")
	}
	analyzers := lint.ByName(names)
	if len(analyzers) == 0 {
		fmt.Fprintf(os.Stderr, "mptlint: no analyzer matches -run %q (try -list)\n", *run)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mptlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	bad := 0
	for _, pkg := range pkgs {
		diags := lint.ApplyNolint(pkg.Fset, pkg.Files, lint.Run(pkg, analyzers))
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mptlint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}
