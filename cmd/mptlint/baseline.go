package main

// The baseline file records findings that are known and accepted for now,
// so the suite can gate NEW violations while the accepted ones are worked
// off. Entries match on (analyzer, relative file, exact message) — no
// line numbers, so unrelated edits to the same file don't churn the
// baseline — and each carries a mandatory "why" justification, reviewed
// like any carve-out. The run fails on stale entries (nothing matched):
// a baseline that over-claims is how a fixed violation regresses quietly.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mptwino/internal/lint"
)

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Why      string `json:"why"`
}

type baselineFile struct {
	Comment string          `json:"comment,omitempty"`
	Entries []baselineEntry `json:"entries"`
}

func (e baselineEntry) key() string { return e.Analyzer + "\x00" + e.File + "\x00" + e.Message }

// relPath renders a diagnostic's filename relative to the working
// directory (the module root in normal runs), slash-separated so the
// baseline and SARIF output are machine-independent.
func relPath(wd, filename string) string {
	if r, err := filepath.Rel(wd, filename); err == nil && !filepath.IsAbs(r) {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(filename)
}

// loadBaseline reads path; a missing file is an empty baseline.
func loadBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &baselineFile{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bl baselineFile
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	seen := map[string]bool{}
	for _, e := range bl.Entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("baseline %s: entry %+v is missing analyzer/file/message", path, e)
		}
		if e.Why == "" {
			return nil, fmt.Errorf("baseline %s: entry for %s in %s has no \"why\" — every accepted finding needs a written justification", path, e.Analyzer, e.File)
		}
		if seen[e.key()] {
			return nil, fmt.Errorf("baseline %s: duplicate entry for %s in %s: %q", path, e.Analyzer, e.File, e.Message)
		}
		seen[e.key()] = true
	}
	return &bl, nil
}

// applyBaseline splits diags into fresh findings (not covered) and
// returns the stale entries (covered nothing).
func applyBaseline(wd string, diags []lint.Diagnostic, bl *baselineFile) (fresh []lint.Diagnostic, stale []baselineEntry, err error) {
	hit := map[string]bool{}
	covered := map[string]bool{}
	for _, e := range bl.Entries {
		covered[e.key()] = true
	}
	for _, d := range diags {
		k := baselineEntry{Analyzer: d.Analyzer, File: relPath(wd, d.Pos.Filename), Message: d.Message}.key()
		if covered[k] {
			hit[k] = true
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range bl.Entries {
		if !hit[e.key()] {
			stale = append(stale, e)
		}
	}
	return fresh, stale, nil
}

// writeBaseline regenerates path from the current findings, preserving
// the "why" of entries that survive. Returns the entry count and how many
// new entries still need a justification written.
func writeBaseline(path, wd string, diags []lint.Diagnostic) (n, missingWhy int, err error) {
	oldWhy := map[string]string{}
	if old, err := loadBaseline(path); err == nil {
		for _, e := range old.Entries {
			oldWhy[e.key()] = e.Why
		}
	}
	seen := map[string]bool{}
	bl := baselineFile{
		Comment: "Accepted mptlint findings. Matched by (analyzer, file, exact message); every entry needs a \"why\". Regenerate with: go run ./cmd/mptlint -update-baseline ./...",
	}
	for _, d := range diags {
		e := baselineEntry{Analyzer: d.Analyzer, File: relPath(wd, d.Pos.Filename), Message: d.Message}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		e.Why = oldWhy[e.key()]
		if e.Why == "" {
			missingWhy++
		}
		bl.Entries = append(bl.Entries, e)
	}
	sort.Slice(bl.Entries, func(i, j int) bool { return bl.Entries[i].key() < bl.Entries[j].key() })
	data, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		return 0, 0, err
	}
	return len(bl.Entries), missingWhy, os.WriteFile(path, append(data, '\n'), 0o644)
}
