// Command gemmprobe reports the GEMM dispatch tiers this CPU supports,
// the tier the process dispatched to, and the detected CPU features.
// CI's kernel-tier matrix runs it *before* exporting MPTWINO_GEMM_KERNEL
// (forcing an unavailable tier panics at init by design), using -require
// to skip legs the runner cannot execute:
//
//	go run ./cmd/gemmprobe                  # print tiers/active/cpu
//	go run ./cmd/gemmprobe -require avx2    # exit 0 iff the avx2 tier exists
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mptwino/internal/tensor"
)

func main() {
	require := flag.String("require", "", "exit 0 iff this dispatch tier is available on this CPU")
	flag.Parse()
	tiers := tensor.GemmKernels()
	fmt.Printf("tiers: %s\n", strings.Join(tiers, " "))
	fmt.Printf("active: %s\n", tensor.GemmKernel())
	fmt.Printf("cpu: %s\n", tensor.CPUFeatures())
	if *require == "" {
		return
	}
	for _, tier := range tiers {
		if tier == *require {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "gemmprobe: tier %q not available on this CPU\n", *require)
	os.Exit(1)
}
