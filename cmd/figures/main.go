// Command figures regenerates the paper's evaluation figures as text
// tables.
//
// Usage:
//
//	figures            # all figures
//	figures -only fig15,fig17
//	figures -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mptwino/internal/figures"
)

func main() {
	only := flag.String("only", "", "comma-separated ids (table1-table4, fig01,fig06,fig07,fig12,fig14,fig15,fig16,fig17,fig18, noc)")
	list := flag.Bool("list", false, "list available figure ids and exit")
	flag.Parse()

	all := figures.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-6s %s\n", r.ID, r.Title)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	printed := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Print(figures.Render(r))
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "figures: no figure matched %q\n", *only)
		os.Exit(1)
	}
}
