// Command mptsim simulates one training iteration of a convolution layer
// or a whole CNN on the NDP system under a chosen parallelization
// configuration.
//
// Usage:
//
//	mptsim -layer Late-2 -config w_mp++            # one Table II layer
//	mptsim -net fractalnet -config w_mp++          # whole CNN
//	mptsim -net wrn -config all -workers 64        # every Table IV config
//	mptsim -layer Mid-1 -k 5 -batch 512            # 5x5 kernels
//	mptsim -net wrn -faults 17                     # module 17 fails; show recovery
//	mptsim -net wrn -faults 3,7,200 -config w_mp*  # multiple failures
//	mptsim -net vgg -trace out.json -metrics       # cycle-domain Chrome trace + counters
//	mptsim -scenarios                              # degraded-fleet scenario matrix (TSV)
//	mptsim -scenarios -scenarios-out table.tsv     # ... to a file (CI artifact)
//	mptsim -net alexnet -autoplan                  # per-layer strategy auto-search (TSV plan)
//	mptsim -net vgg -autoplan -autoplan-out p.tsv  # ... plan dump to a file (CI artifact)
//
// Telemetry output is deterministic: for a fixed invocation the trace
// JSON and metrics dumps are byte-identical at any -parallel setting
// (timestamps are simulated cycles, never wall clock).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"mptwino/internal/model"
	"mptwino/internal/parallel"
	"mptwino/internal/planner"
	"mptwino/internal/scenario"
	"mptwino/internal/sim"
	"mptwino/internal/telemetry"
	"mptwino/internal/traceview"
)

func main() {
	layerName := flag.String("layer", "", "Table II layer: Early, Mid-1, Mid-2, Late-1, Late-2")
	netName := flag.String("net", "", "network: wrn, resnet34, fractalnet, vgg, alexnet")
	cfgName := flag.String("config", "w_mp++", "Table IV config (d_dp,w_dp,w_mp,w_mp+,w_mp*,w_mp++) or 'all'")
	workers := flag.Int("workers", 256, "NDP worker count")
	batch := flag.Int("batch", 256, "total batch size (layer mode only; networks use their catalog batch)")
	k := flag.Int("k", 3, "kernel size for layer mode: 3 or 5")
	breakdown := flag.Bool("breakdown", false, "layer mode: show per-resource durations and the binding resource")
	faults := flag.String("faults", "", "net mode: comma-separated failed module IDs; re-solves clustering over the survivors and reports healthy vs degraded")
	scenarios := flag.Bool("scenarios", false, "run the deterministic degraded-fleet scenario matrix and emit the TSV table (byte-identical at any -parallel)")
	scenariosOut := flag.String("scenarios-out", "", "with -scenarios: write the table to this file instead of stdout")
	scenariosSmoke := flag.Bool("scenarios-smoke", false, "with -scenarios: run the trimmed fast subset (the make-verify smoke grid)")
	autoplan := flag.Bool("autoplan", false, "net mode: search per-layer parallelization strategies with lower-bound pruning and emit the plan TSV (byte-identical at any -parallel)")
	autoplanOut := flag.String("autoplan-out", "", "with -autoplan: write the plan dump to this file instead of stdout")
	allowWideTiles := flag.Bool("allow-wide-tiles", false, "with -autoplan: admit the numerically unsafe F(6x6,3x3) transform into the planner's tile-size axis (inference-grade only)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) with simulated-cycle timestamps to this file")
	traceReport := flag.String("trace-report", "", "write the mpttrace text attribution report (critical path, overlap, idle) for this run to this file")
	metrics := flag.Bool("metrics", false, "dump the telemetry counters as aligned text on exit")
	metricsJSON := flag.String("metrics-json", "", "write the telemetry counters as JSON to this file ('-' for stdout)")
	force := flag.Bool("force", false, "overwrite existing -trace/-metrics-json/-trace-report output files instead of refusing")
	par := flag.Int("parallel", 0, "host goroutines for the sweep fan-out (0 = GOMAXPROCS); results and telemetry are byte-identical for every value")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	s := sim.DefaultSystem()
	s.Workers = *workers
	s.Parallel = *par

	// Telemetry: any of -trace/-trace-report/-metrics/-metrics-json turns
	// the registry on; -trace and -trace-report additionally record the
	// cycle-domain event stream. Telemetry files are never silently
	// overwritten — an existing regular file at any of these paths aborts
	// the run unless -force is set.
	for _, p := range []string{*traceFile, *traceReport, *metricsJSON} {
		checkOverwrite(p, *force)
	}
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if *traceFile != "" || *traceReport != "" || *metrics || *metricsJSON != "" {
		reg = telemetry.NewRegistry()
		parallel.Attach(reg)
	}
	if *traceFile != "" || *traceReport != "" {
		tracer = telemetry.NewTracer()
	}
	s.Metrics = reg
	s.Trace = tracer
	defer writeTelemetry(reg, tracer, *traceFile, *traceReport, *metrics, *metricsJSON)

	var cfgs []sim.SystemConfig
	if *cfgName == "all" {
		cfgs = sim.AllConfigs()
	} else {
		c, err := parseConfig(*cfgName)
		if err != nil {
			fail(err)
		}
		cfgs = []sim.SystemConfig{c}
	}

	switch {
	case *scenarios:
		m := scenario.Run(scenario.Options{Workers: *workers, Parallel: *par, Smoke: *scenariosSmoke})
		w := os.Stdout
		if *scenariosOut != "" {
			f, err := os.Create(*scenariosOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := m.WriteTSV(w); err != nil {
			fail(err)
		}
	case *layerName != "":
		l, err := findLayer(*layerName, *k)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-8s %-7s %3s %3s %12s %12s %12s %14s %12s\n",
			"layer", "config", "Ng", "Nc", "fwd (us)", "bwd (us)", "total (us)", "energy (J)", "net MB/wkr")
		for _, c := range cfgs {
			r := s.SimulateLayer(l, *batch, c)
			fmt.Printf("%-8s %-7s %3d %3d %12.1f %12.1f %12.1f %14.4f %12.2f\n",
				l.Name, c, r.Ng, r.Nc, r.ForwardSec*1e6, r.BackwardSec*1e6,
				r.TotalSec()*1e6, r.Energy.Total(), float64(r.NetBytes)/1e6)
			if *breakdown {
				printBreakdown("fwd", r.Forward)
				printBreakdown("bwd", r.Backward)
			}
		}
	case *netName != "":
		net, err := findNetwork(*netName)
		if err != nil {
			fail(err)
		}
		if *faults != "" {
			failed, err := parseFaults(*faults)
			if err != nil {
				fail(err)
			}
			runFaults(s, net, cfgs, failed)
			return
		}
		if *autoplan {
			if *cfgName == "all" {
				fail(fmt.Errorf("-autoplan needs a single -config, not 'all'"))
			}
			runAutoplan(s, net, cfgs[0], *autoplanOut, *allowWideTiles)
			return
		}
		base := sim.SingleWorkerBaseline(net)
		fmt.Printf("%s: batch %d, %d layer entries, %.1fM params, 1-NDP baseline %.1f img/s\n",
			net.Name, net.Batch, len(net.Layers), float64(net.ParamCount())/1e6, base.ImagesPerSec)
		fmt.Printf("%-7s %12s %12s %12s %10s %10s\n",
			"config", "iter (ms)", "img/s", "speedup", "energy (J)", "power (W)")
		for _, c := range cfgs {
			r := s.SimulateNetwork(net, c)
			fmt.Printf("%-7s %12.2f %12.1f %11.1fx %10.1f %10.0f\n",
				c, r.IterationSec*1e3, r.ImagesPerSec, sim.Speedup(r, base),
				r.Energy.Total(), r.PowerW)
		}
	default:
		fail(fmt.Errorf("specify -layer, -net, or -scenarios (see -h)"))
	}
}

// runAutoplan builds the per-layer strategy plan and writes the
// deterministic TSV dump — the bytes the CI autoplan job diffs against
// the goldens in internal/planner/testdata. A summary of the plan-vs-menu
// comparison goes to stderr so redirected stdout stays clean TSV.
func runAutoplan(s sim.System, net model.Network, cfg sim.SystemConfig, outPath string, wideTiles bool) {
	p := planner.Build(net, planner.Options{System: s, Config: cfg, AllowWideTiles: wideTiles})
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := p.WriteTSV(w); err != nil {
		fail(err)
	}
	// With -trace attached, execute the plan once so the Chrome timeline
	// shows the planned per-layer phases (the search itself emits none).
	if s.Trace.Enabled() {
		s.SimulateNetworkWithPlan(net, cfg, p.Strategies())
	}
	fmt.Fprintf(os.Stderr, "mptsim: %s autoplan %.3fms vs menu %.3fms (%.2f%% faster), redistribution %.3fus\n",
		net.Name, p.ExecSec*1e3, p.MenuExecSec*1e3,
		100*(1-p.ExecSec/p.MenuExecSec), p.RedistSec*1e6)
}

// runFaults prints the fault-recovery comparison: the same network
// simulated healthy and after the listed module failures, with the
// dynamic-clustering optimizer re-solving the grid over the survivors.
func runFaults(s sim.System, net model.Network, cfgs []sim.SystemConfig, failed []int) {
	fmt.Printf("%s: %d workers, %d failed module(s) %v\n", net.Name, s.Workers, len(failed), failed)
	fmt.Printf("%-7s %9s %14s %14s %9s %9s %14s\n",
		"config", "survivors", "healthy (ms)", "degraded (ms)", "slowdown", "grid", "reconfig (us)")
	for _, c := range cfgs {
		r, err := s.SimulateNetworkWithFailure(net, c, failed)
		if err != nil {
			fail(err)
		}
		// Report the grid the first (largest) layer settled on.
		grid := "-"
		if len(r.Degraded.Layers) > 0 {
			lr := r.Degraded.Layers[0]
			grid = fmt.Sprintf("(%d,%d)", lr.Ng, lr.Nc)
		}
		fmt.Printf("%-7s %9d %14.2f %14.2f %8.2fx %9s %14.1f\n",
			c, r.Survivors, r.Healthy.IterationSec*1e3, r.Degraded.IterationSec*1e3,
			r.Slowdown(), grid, r.ReconfigSec*1e6)
	}
}

func parseFaults(list string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad module id %q in -faults", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-faults given but no module ids parsed")
	}
	return out, nil
}

func printBreakdown(pass string, b sim.Breakdown) {
	fmt.Printf("         %s: systolic %.1fus  vector %.1fus  dram %.1fus  tile %.1fus  coll %.1fus  -> bound by %s\n",
		pass, b.SystolicSec*1e6, b.VectorSec*1e6, b.DRAMSec*1e6,
		b.TileCommSec*1e6, b.CollSec*1e6, b.Binding())
}

func parseConfig(name string) (sim.SystemConfig, error) {
	for _, c := range sim.AllConfigs() {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown config %q", name)
}

func findLayer(name string, k int) (model.Layer, error) {
	layers := model.FiveLayers()
	if k == 5 {
		layers = model.FiveLayers5x5()
	} else if k != 3 {
		return model.Layer{}, fmt.Errorf("kernel size %d unsupported (3 or 5)", k)
	}
	for _, l := range layers {
		if strings.EqualFold(l.Name, name) {
			return l, nil
		}
	}
	return model.Layer{}, fmt.Errorf("unknown layer %q", name)
}

func findNetwork(name string) (model.Network, error) {
	switch strings.ToLower(name) {
	case "wrn", "wrn-40-10":
		return model.WRN40x10(), nil
	case "resnet34", "resnet-34":
		return model.ResNet34(), nil
	case "fractalnet", "fractal":
		return model.FractalNet44(), nil
	case "vgg", "vgg16", "vgg-16":
		return model.VGG16(), nil
	case "alexnet":
		return model.AlexNet(), nil
	default:
		return model.Network{}, fmt.Errorf("unknown network %q (wrn, resnet34, fractalnet, vgg, alexnet)", name)
	}
}

// checkOverwrite aborts when path names an existing regular file and
// -force is not set; devices like /dev/null and fresh paths pass.
func checkOverwrite(path string, force bool) {
	if path == "" || path == "-" || force {
		return
	}
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		fail(fmt.Errorf("%s exists; pass -force to overwrite", path))
	}
}

// writeTelemetry flushes the run's telemetry: the Chrome trace_event JSON
// to tracePath, the mpttrace attribution report to reportPath, the counter
// registry as aligned text to stdout (-metrics) and/or JSON to jsonPath
// ('-' = stdout). All output is canonical bytes — sorted counter names,
// stable-sorted events — so runs at different -parallel settings diff
// clean.
func writeTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer, tracePath, reportPath string, text bool, jsonPath string) {
	if tracer != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mptsim: wrote %d trace events to %s\n", tracer.Len(), tracePath)
	}
	if tracer != nil && reportPath != "" {
		run := traceview.FromTrace(tracer.Export())
		if reg != nil {
			run.Metrics = traceview.FromSnapshot(reg.Snapshot())
		}
		rep := traceview.Analyze(run, traceview.Options{})
		f, err := os.Create(reportPath)
		if err != nil {
			fail(err)
		}
		if err := rep.WriteText(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mptsim: wrote attribution report to %s\n", reportPath)
	}
	if reg == nil {
		return
	}
	if text {
		fmt.Println()
		if err := reg.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	}
	if jsonPath != "" {
		w := os.Stdout
		if jsonPath != "-" {
			f, err := os.Create(jsonPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteJSON(w); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mptsim:", err)
	os.Exit(2)
}
