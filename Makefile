# Developer entry points. `make verify` is the gate every change must pass:
# it builds all packages, runs vet, runs the full test suite, and runs it
# again under the race detector (the parallel engine's determinism tests
# only prove anything when raced).

GO ?= go
STATICCHECK_VERSION ?= 2025.1

.PHONY: verify build vet test race fuzz lint bench bench-baseline benchdiff

verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the activation-predictor safety invariant.
fuzz:
	$(GO) test -fuzz=FuzzPredictorNeverUnderestimates -fuzztime=30s ./internal/quant/

# Pinned staticcheck, fetched on demand (requires network: runs in CI; on an
# offline box this target is the only one that needs module downloads).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Run the full benchmark suite once, interactively.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x .

# Record bench/BENCH_baseline.json from the current tree (commit the result).
bench-baseline:
	$(GO) run ./cmd/benchdiff -update

# Snapshot the suite to bench/BENCH_<date>.json and gate the paper's model
# metrics against the committed baseline (see EXPERIMENTS.md for the policy).
benchdiff:
	$(GO) run ./cmd/benchdiff
