# Developer entry points. `make verify` is the gate every change must pass:
# it builds all packages, runs vet, runs the full test suite, and runs it
# again under the race detector (the parallel engine's determinism tests
# only prove anything when raced).

GO ?= go
STATICCHECK_VERSION ?= 2025.1

.PHONY: verify fmt-check build vet lint lint-ci test race fuzz bench bench-baseline benchdiff profile trace trace-report scenarios scenarios-smoke autoplan

verify: fmt-check build vet lint scenarios-smoke test race

# gofmt gate: fails listing the offending files (gofmt -l prints paths and
# exits 0, so the emptiness of its output is the check).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the numeric invariants: activation-predictor
# safety and blocked-GEMM bit-identity with the naive reference.
fuzz:
	$(GO) test -fuzz=FuzzPredictorNeverUnderestimates -fuzztime=30s ./internal/quant/
	$(GO) test -fuzz=FuzzBlockedGemmMatchesNaive -fuzztime=30s ./internal/tensor/

# mptlint: the repo's own invariant analyzers (determinism, bounded
# parallelism, zero-alloc kernels — DESIGN.md §9/§14). Fully offline: type
# information comes from `go list -export` build-cache data, so this runs
# on an air-gapped machine and is part of `make verify`. The -cache file
# keeps the go list metadata warm between runs (revalidated against file
# hashes and the build cache, so it is always safe to keep).
lint:
	$(GO) run ./cmd/mptlint -cache .mptlintcache/golist.json ./...

# Pinned staticcheck, fetched on demand (requires network, so it is a
# separate CI-only target: `make lint`/`make verify` must stay offline).
lint-ci: lint
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Run the full benchmark suite once, interactively.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x .

# Record bench/BENCH_baseline.json from the current tree (commit the result).
bench-baseline:
	$(GO) run ./cmd/benchdiff -update

# Snapshot the suite to bench/BENCH_<date>.json and gate the paper's model
# metrics plus the zero-alloc contracts against the committed baseline
# (see EXPERIMENTS.md for the policy).
benchdiff:
	$(GO) run ./cmd/benchdiff

# Deterministic cycle-domain telemetry walkthrough (DESIGN.md §10): sweep
# VGG-16 over every Table IV config plus a fault-recovery run, write the
# Chrome trace_event timeline to trace.json (open in chrome://tracing or
# https://ui.perfetto.dev), and dump the counter registry. Timestamps are
# simulated cycles, so the output is byte-identical at any -parallel value.
trace:
	$(GO) run ./cmd/mptsim -net vgg -config all -faults 17 -trace trace.json -metrics -force

# Trace-analysis walkthrough (DESIGN.md §15): execute the vgg16 autoplan
# under the tracer, then analyze it with mpttrace — critical path, overlap
# attribution, achieved-vs-bound ratios — as text on stdout plus a
# self-contained HTML timeline in trace_report.html. The text bytes match
# internal/traceview/testdata/report_vgg16_autoplan.txt (refresh with
# `go test ./internal/traceview -run Golden -update`); CI's trace-gate job
# diffs exactly that.
trace-report:
	$(GO) run ./cmd/mptsim -net vgg -autoplan -autoplan-out /dev/null \
		-trace trace_vgg16.json -metrics-json metrics_vgg16.json -force
	$(GO) run ./cmd/mpttrace report -metrics metrics_vgg16.json trace_vgg16.json
	$(GO) run ./cmd/mpttrace report -metrics metrics_vgg16.json -format html \
		-o trace_report.html trace_vgg16.json
	@echo "wrote trace_vgg16.json metrics_vgg16.json trace_report.html"

# Deterministic degraded-fleet scenario matrix (DESIGN.md §11): the pinned
# {fleet class × network} grid under w_mp++, as a TSV that is byte-identical
# at any -parallel value. CI diffs the emitted table against the committed
# golden (internal/scenario/testdata/scenarios_golden.tsv; refresh with
# `go test ./internal/scenario -update`) and uploads it as an artifact.
scenarios:
	$(GO) run ./cmd/mptsim -scenarios -scenarios-out scenarios.tsv
	@echo "wrote scenarios.tsv"

# Per-layer parallelization-strategy auto-search (DESIGN.md §12): emit the
# deterministic plan dumps for the planner workloads and diff them against
# the committed goldens (internal/planner/testdata; refresh with
# `go test ./internal/planner -run Golden -update`). CI runs the same
# commands in the autoplan job and uploads the dumps as artifacts.
autoplan:
	$(GO) run ./cmd/mptsim -net alexnet -autoplan -autoplan-out plan_alexnet.tsv
	$(GO) run ./cmd/mptsim -net vgg -autoplan -autoplan-out plan_vgg16.tsv
	diff -u internal/planner/testdata/plan_alexnet.tsv plan_alexnet.tsv
	diff -u internal/planner/testdata/plan_vgg16.tsv plan_vgg16.tsv
	@echo "wrote plan_alexnet.tsv plan_vgg16.tsv (match committed goldens)"

# Fast smoke subset of the scenario-matrix golden — part of `make verify`
# (the full grid runs in the regular test suite and in the CI matrix job).
scenarios-smoke:
	$(GO) test -run 'TestMatrixSmokeGolden' ./internal/scenario/

# CPU + heap profiles. The first recipe profiles the timing simulator via
# mptsim's -cpuprofile/-memprofile flags; the second profiles the numeric
# hot paths (blocked GEMM + fused transforms) through the steady-state
# layer benchmarks. Inspect with `go tool pprof <binary-or-blank> cpu.pprof`.
profile:
	$(GO) run ./cmd/mptsim -net wrn -config all -cpuprofile sim_cpu.pprof -memprofile sim_mem.pprof
	$(GO) test -run '^$$' -bench 'Gemm|LayerFprop|LayerBprop|LayerUpdateGrad' -benchtime 2s \
		-cpuprofile kernel_cpu.pprof -memprofile kernel_mem.pprof .
	@echo "profiles: sim_cpu.pprof sim_mem.pprof kernel_cpu.pprof kernel_mem.pprof"
