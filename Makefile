# Developer entry points. `make verify` is the gate every change must pass:
# it builds all packages, runs vet, and runs the full test suite under the
# race detector.

GO ?= go

.PHONY: verify build vet test race fuzz

verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the activation-predictor safety invariant.
fuzz:
	$(GO) test -fuzz=FuzzPredictorNeverUnderestimates -fuzztime=30s ./internal/quant/
