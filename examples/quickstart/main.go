// Quickstart: build the paper's Winograd layer, verify it against direct
// convolution, and train it for a few SGD steps with weights updated
// directly in the Winograd domain (Fig. 2(b)).
package main

import (
	"fmt"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

func main() {
	// A small 3x3 convolution layer: 8 input channels, 16 output channels,
	// 16x16 feature maps, batch of 4.
	p := conv.Params{In: 8, Out: 16, K: 3, Pad: 1, H: 16, W: 16}
	rng := tensor.NewRNG(42)

	x := tensor.New(4, p.In, p.H, p.W)
	w := tensor.New(p.Out, p.In, p.K, p.K)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, p.In*p.K*p.K)

	// 1. Winograd fprop equals direct convolution.
	tr := winograd.F2x2_3x3
	direct := conv.Fprop(p, x, w)
	wino := winograd.Fprop(tr, p, x, w)
	fmt.Printf("transform %s: tile %dx%d, %d elements per tile\n", tr, tr.T, tr.T, tr.T*tr.T)
	fmt.Printf("fprop max |direct - winograd| = %.2e\n", direct.MaxAbsDiff(wino))

	// 2. The compute/data trade-off of Fig. 1.
	red, inc := winograd.Savings(winograd.F4x4_3x3, p, 4)
	fmt.Printf("F(4x4,3x3): %.2fx fewer multiplications, %.2fx more data accessed\n", red, inc)

	// 3. Train the Winograd layer on a regression target, updating W in
	// the Winograd domain.
	layer, err := winograd.NewLayer(tr, p, rng)
	if err != nil {
		panic(err)
	}
	target := tensor.New(4, p.Out, p.OutH(), p.OutW())
	rng.FillNormal(target, 0, 1)
	fmt.Println("training the Winograd layer (L = 0.5||y - target||^2):")
	for step := 0; step < 8; step++ {
		y := layer.Fprop(x)
		dy := y.Clone()
		dy.AXPY(-1, target)
		var loss float64
		for _, v := range dy.Data {
			loss += 0.5 * float64(v) * float64(v)
		}
		dW := layer.UpdateGradW(dy)
		layer.Step(0.001, dW)
		fmt.Printf("  step %d: loss %.4f\n", step, loss)
	}

	// 4. Intra-tile parallelism: each of the 16 tile elements is an
	// independent matrix multiplication — MPT's unit of distribution.
	tl := layer.Tiling
	xd := tl.TransformInput(x)
	for _, ng := range []int{1, 4, 16} {
		els := winograd.GroupElements(tr.T, ng, 0)
		yd := winograd.MulForward(xd, layer.W, els)
		_ = yd
		fmt.Printf("with %2d groups, group 0 computes elements %v\n", ng, els)
	}
}
