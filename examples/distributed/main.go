// Distributed trains a 3-layer CNN end to end on the functional MPT
// engine — batch shards across clusters, tile elements across groups, ring
// all-reduce of each group's weight-gradient shard — and compares the loss
// trajectory and measured traffic against the single-worker run and the
// §III-C communication model.
package main

import (
	"fmt"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/mpt"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

func main() {
	params := []conv.Params{
		{In: 2, Out: 8, K: 3, Pad: 1, H: 12, W: 12},
		{In: 8, Out: 8, K: 3, Pad: 1, H: 12, W: 12},
		{In: 8, Out: 2, K: 3, Pad: 1, H: 12, W: 12},
	}
	cfg := mpt.Config{Ng: 4, Nc: 4, ZeroSkip: true}
	fmt.Printf("MPT grid: %d groups x %d clusters = %d workers\n", cfg.Ng, cfg.Nc, cfg.Ng*cfg.Nc)

	net, err := mpt.NewNet(winograd.F2x2_3x3, params, cfg, tensor.NewRNG(42))
	if err != nil {
		panic(err)
	}

	rng := tensor.NewRNG(43)
	x := tensor.New(8, 2, 12, 12)
	target := tensor.New(8, 2, 12, 12)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(target, 0, 0.5)

	fmt.Println("training distributed (every step: scatter, 16 element matmuls, gather, ring all-reduce):")
	for step := 0; step < 8; step++ {
		loss, err := net.TrainStepMSE(x, target, 0.0005)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  step %d: loss %.4f\n", step, loss)
	}

	tr := net.TotalTraffic()
	fmt.Printf("\nmeasured traffic over the run (system-wide bytes):\n")
	fmt.Printf("  tile scatter: %8.2f MB (zero-skipping on)\n", float64(tr.ScatterBytes)/1e6)
	fmt.Printf("  tile gather:  %8.2f MB\n", float64(tr.GatherBytes)/1e6)
	fmt.Printf("  collectives:  %8.2f MB\n", float64(tr.CollectiveBytes)/1e6)

	// Cross-check one layer's collective against the closed-form model.
	shard := comm.WinogradWeightBytes(winograd.F2x2_3x3, params[0]) / int64(cfg.Ng)
	perWorker := comm.RingCollectivePerWorker(shard, cfg.Nc)
	fmt.Printf("\nmodel check (layer 0): ring collective %.1f KB/worker one-way (x2 directions x%d workers x steps)\n",
		float64(perWorker)/1e3, cfg.Ng*cfg.Nc)
}
