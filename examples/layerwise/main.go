// Layerwise sweeps the five Table II convolution layers over every Table
// IV system configuration on the 256-worker NDP machine — the Fig. 15
// experiment — and prints where MPT wins, where it loses, and what
// dynamic clustering picks.
package main

import (
	"fmt"

	"mptwino/internal/model"
	"mptwino/internal/sim"
)

func main() {
	s := sim.DefaultSystem()
	fmt.Printf("NDP system: %d workers, %dx%d systolic @%.0f GHz, %.0f GB/s DRAM\n\n",
		s.Workers, s.NDP.SystolicDim, s.NDP.SystolicDim, s.NDP.ClockHz/1e9, s.NDP.DRAMBw/1e9)

	for _, l := range model.FiveLayers() {
		ref := s.SimulateLayer(l, 256, sim.WDp)
		fmt.Printf("%s: %dx%d, %d->%d channels (w_dp total %.0f us)\n",
			l.Name, l.P.H, l.P.W, l.P.In, l.P.Out, ref.TotalSec()*1e6)
		for _, c := range sim.AllConfigs() {
			r := s.SimulateLayer(l, 256, c)
			marker := ""
			if r.TotalSec() < ref.TotalSec()*0.999 {
				marker = "  << faster than w_dp"
			}
			fmt.Printf("  %-7s (Ng=%2d,Nc=%3d)  fwd %7.1f us  bwd %7.1f us  energy %7.4f J%s\n",
				c, r.Ng, r.Nc, r.ForwardSec*1e6, r.BackwardSec*1e6, r.Energy.Total(), marker)
		}
		fmt.Println()
	}

	fmt.Println("headline (paper Fig. 15: w_mp+ gains 2.24x on mid / 4.54x on late layers):")
	for _, pair := range [][2]int{{1, 2}, {3, 4}} {
		var dp, pred float64
		for _, i := range pair {
			l := model.FiveLayers()[i]
			dp += s.SimulateLayer(l, 256, sim.WDp).TotalSec()
			pred += s.SimulateLayer(l, 256, sim.WMpPred).TotalSec()
		}
		fmt.Printf("  layers %v: w_mp+ speedup %.2fx\n", pair, dp/pred)
	}
}
