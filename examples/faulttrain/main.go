// Faulttrain demonstrates the fault-injection and recovery stack end to
// end. Part 1 drives the flit-level NoC under a deterministic fault plan —
// a degraded link, transient flit drops recovered by timeout-and-
// retransmit, and a scheduled module failure rerouted around. Part 2 runs
// the functional MPT trainer through a module failure: train at (4,4),
// checkpoint, lose a worker, re-solve the grid over the 15 survivors,
// restore, and show the loss trajectory continuing exactly as a fault-free
// run at the surviving configuration would.
package main

import (
	"fmt"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/fault"
	"mptwino/internal/mpt"
	"mptwino/internal/noc"
	"mptwino/internal/tensor"
	"mptwino/internal/topology"
	"mptwino/internal/winograd"
)

func main() {
	nocDemo()
	trainDemo()
}

// allToAll runs a 16-worker FBFLY all-to-all under the given plan and
// returns the stats.
func allToAll(plan *fault.Plan) (noc.Stats, error) {
	n := noc.New(topology.FBFly2D(4), noc.DefaultConfig())
	if plan != nil {
		if err := n.AttachFaults(plan); err != nil {
			return noc.Stats{}, err
		}
	}
	members := make([]int, 16)
	for i := range members {
		members[i] = i
	}
	return n.Run(&noc.AllToAll{Members: members, Bytes: 2048}, 10_000_000)
}

func nocDemo() {
	fmt.Println("== NoC fault injection: 16-worker FBFLY all-to-all, 2 KB/pair ==")
	healthy, err := allToAll(nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  healthy:            %6d cycles\n", healthy.Cycles)

	// Link 0-1 at quarter bandwidth plus 10 extra SerDes cycles.
	deg, err := allToAll(fault.NewPlan(1).DegradeLink(0, 1, 0, 0, 0.25, 10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("  degraded link 0-1:  %6d cycles (0.25x bandwidth, +10 SerDes)\n", deg.Cycles)

	// Transient corruption on two links, recovered by retransmission.
	drop, err := allToAll(fault.NewPlan(2).DropOnLink(0, 1, 0, 0, 0.2).DropOnLink(2, 3, 0, 0, 0.2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("  20%% flit drops:     %6d cycles, %d flits dropped, %d retransmits (max %d retries/msg)\n",
		drop.Cycles, drop.DroppedFlits, drop.Retransmits, drop.MaxMsgRetries)

	// Module 5 dies mid-run; the FBFLY reroutes and survivors finish.
	n := noc.New(topology.FBFly2D(4), noc.DefaultConfig())
	if err := n.AttachFaults(fault.NewPlan(3).FailNode(5, 100)); err != nil {
		panic(err)
	}
	members := []int{0, 1, 2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15} // survivors' traffic
	st, err := n.Run(&noc.AllToAll{Members: members, Bytes: 2048}, 10_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  module 5 fails@100: %6d cycles, survivors' all-to-all completes (%d flits dropped in transit)\n\n",
		st.Cycles, st.DroppedFlits)
}

func trainDemo() {
	fmt.Println("== MPT recovery: module failure, re-clustering, checkpoint/restore ==")
	params := []conv.Params{
		{In: 2, Out: 6, K: 3, Pad: 1, H: 8, W: 8},
		{In: 6, Out: 2, K: 3, Pad: 1, H: 8, W: 8},
	}
	const batch, lr, steps = 16, 0.0005, 4

	rng := tensor.NewRNG(43)
	x := tensor.New(batch, 2, 8, 8)
	target := tensor.New(batch, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(target, 0, 0.5)

	net, err := mpt.NewNet(winograd.F2x2_3x3, params, mpt.Config{Ng: 4, Nc: 4}, tensor.NewRNG(42))
	if err != nil {
		panic(err)
	}
	fmt.Println("  training on the healthy (4,4) grid, 16 workers:")
	for step := 0; step < steps; step++ {
		loss, err := net.TrainStepMSE(x, target, lr)
		if err != nil {
			panic(err)
		}
		fmt.Printf("    step %d: loss %.4f\n", step, loss)
	}

	cp := net.Checkpoint()
	survivors := 15
	grid := comm.SurvivorConfigs(survivors)[0]
	fmt.Printf("  module failure: 16 -> %d workers; survivor menu leads with (%d,%d)\n",
		survivors, grid.Ng, grid.Nc)
	if err := net.Reconfigure(grid.Ng, grid.Nc); err != nil {
		panic(err)
	}
	if err := net.Restore(cp); err != nil {
		panic(err)
	}

	// Fault-free reference at the surviving grid, from the same checkpoint.
	ref, err := mpt.NewNet(winograd.F2x2_3x3, params, mpt.Config{Ng: grid.Ng, Nc: grid.Nc}, tensor.NewRNG(7))
	if err != nil {
		panic(err)
	}
	if err := ref.Restore(cp); err != nil {
		panic(err)
	}

	fmt.Printf("  resuming on the degraded (%d,%d) grid vs fault-free reference:\n", grid.Ng, grid.Nc)
	identical := true
	for step := 0; step < steps; step++ {
		got, err := net.TrainStepMSE(x, target, lr)
		if err != nil {
			panic(err)
		}
		want, err := ref.TrainStepMSE(x, target, lr)
		if err != nil {
			panic(err)
		}
		match := got == want
		identical = identical && match
		fmt.Printf("    step %d: recovered %.6f  fault-free %.6f  identical=%v\n", step, got, want, match)
	}
	if identical {
		fmt.Println("  recovery is exact: the degraded trajectory matches the fault-free run bit for bit")
	} else {
		fmt.Println("  WARNING: trajectories diverged")
	}
}
