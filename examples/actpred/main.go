// Actpred demonstrates Section V end to end: a real Winograd-domain
// forward pass is quantized with the non-uniform quantizer, activation of
// spatial neurons is predicted conservatively at the destination, and the
// saved tile-gathering traffic is measured — with a proof run showing zero
// false negatives (no accuracy loss).
package main

import (
	"fmt"

	"mptwino/internal/conv"
	"mptwino/internal/ndp"
	"mptwino/internal/quant"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

func main() {
	tr := winograd.F2x2_3x3
	p := conv.Params{In: 8, Out: 16, K: 3, Pad: 1, H: 32, W: 32}
	rng := tensor.NewRNG(7)

	// Forward pass: ReLU-sparse inputs through a He-initialized layer.
	tl, err := winograd.NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	x := tensor.New(8, p.In, p.H, p.W)
	rng.FillNormal(x, -0.3, 1)
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	w := tensor.New(p.Out, p.In, 3, 3)
	rng.FillHe(w, p.In*9)
	xd := tl.TransformInput(x)
	wd := winograd.TransformWeights(tr, w)
	yd := winograd.MulForward(xd, wd, nil)

	// Calibrate the quantizer to the observed Winograd-domain sigma (the
	// paper: "values of Winograd domain tiles follow normal distribution").
	var sample []float32
	for _, el := range yd.El {
		sample = append(sample, el.Data...)
	}
	sigma := quant.EstimateSigma(sample)
	fmt.Printf("Winograd-domain sigma = %.3f\n", sigma)

	// Trained ReLU networks keep most neurons non-activated; emulate that
	// operating point with a −0.7σ pre-activation bias lifted exactly into
	// the Winograd domain.
	yd.AddOutputBias(-0.7 * sigma)

	q := quant.MustQuantizer(4, 6, sigma)
	fmt.Printf("quantizer: %d regions, %d-bit codes, base step %.4f, range ±%.2f\n",
		q.Regions, q.Bits, q.Delta, q.HalfRange())

	// One tile in detail.
	tile := tensor.NewMat(tr.T, tr.T)
	for e := range yd.El {
		tile.Data[e] = yd.El[e].At(0, 0)
	}
	pred := quant.NewPredictor(tr, q)
	pr := pred.Predict2D(tile)
	fmt.Printf("example tile: estimate[0,0]=%.3f maxErr[0,0]=%.3f -> non-activated: %v (truth: %v)\n",
		pr.Est.At(0, 0), pr.MaxErr.At(0, 0), pr.NonActivated(), quant.TrueNonActivated(tr, tile))

	// Whole-layer measurement: Fig. 12 quantities.
	p1 := quant.NewPredictor(tr, quant.MustQuantizer(4, 5, sigma))
	stats := quant.MeasureGather(yd, pred, p1)
	fmt.Printf("\ntiles: %d  truly non-activated: %.1f%%  2D-predicted: %.1f%%  (false negatives: %d)\n",
		stats.Tiles, 100*stats.TrueTileRatio(), 100*stats.TileSkipRatio(), stats.FalseNegatives)
	fmt.Printf("lines: %d  truly non-activated: %.1f%%  1D-predicted: %.1f%%\n",
		stats.Lines, 100*stats.TrueLineRatio(), 100*stats.LineSkipRatio())
	fmt.Printf("net gather traffic reduction: 2D %.1f%%, 1D %.1f%% (paper: 34.0%% / 78.1%%)\n",
		100*quant.GatherTrafficReduction(stats.TileSkipRatio(), 6),
		100*quant.GatherTrafficReduction(stats.LineSkipRatio(), 5))

	// Zero-skipping on the scatter side.
	fmt.Printf("input-tile zero ratio (zero-skipping potential): %.1f%% (paper: 39.3%% 2D / 64.7%% 1D)\n",
		100*quant.ScatterZeroRatio(xd))

	// The packing DMA (Fig. 13(b)): pack one worker's tile stream under an
	// activation map built from the predictions.
	unit := tr.T * tr.T
	nTiles := 64
	m := ndp.NewActivationMap(nTiles)
	data := make([]float32, nTiles*unit)
	row := 0
	for ti := 0; ti < nTiles; ti++ {
		for e := range yd.El {
			tile.Data[e] = yd.El[e].At(row, 0)
			data[ti*unit+e] = tile.Data[e]
		}
		if pred.Predict2D(tile).NonActivated() {
			m.Kill(ti)
		}
		row++
	}
	dma := ndp.PackingDMA{UnitLen: unit}
	packed := dma.Pack(data, m)
	fmt.Printf("\npacking DMA: %d of %d tiles live -> payload %d of %d values (%.1f%% saved)\n",
		m.LiveCount(), nTiles, len(packed), len(data),
		100*(1-float64(len(packed))/float64(len(data))))
}
