// Straggler is the heterogeneous-fleet walkthrough: one slow module on
// the paper's 256-worker machine, from capability profile to recovered
// throughput. Part 1 prices the straggler in the timing simulator and
// shows load-aware batch sharding recovering most of the synchronous-step
// penalty. Part 2 runs the functional MPT trainer through the full
// degraded-recovery sequence — train on a straggler fleet with
// speed-proportional shards, checkpoint, lose a different module,
// re-solve the survivor grid, rebalance onto the survivor speeds, restore
// — and shows the post-recovery loss trajectory matching a fault-free
// network wired that way from the start, bit for bit.
package main

import (
	"fmt"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/fault"
	"mptwino/internal/model"
	"mptwino/internal/mpt"
	"mptwino/internal/sim"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

func main() {
	simDemo()
	trainDemo()
}

// simDemo prices a half-speed module 17 on WRN-40-10 under w_mp++, with
// and without load-aware sharding.
func simDemo() {
	net := model.WRN40x10()
	healthy := sim.DefaultSystem()

	straggler := func(loadAware bool) sim.System {
		s := sim.DefaultSystem()
		plan := fault.SlowStragglerPlan(1, s.Workers, 17, 0.5)
		s.ComputeSpeeds, s.LinkSpeeds = plan.ModuleSpeeds(s.Workers, 0, 1)
		s.LoadAware = loadAware
		return s
	}

	h := healthy.SimulateNetwork(net, sim.WMpFull)
	equal := straggler(false).SimulateNetwork(net, sim.WMpFull)
	aware := straggler(true).SimulateNetwork(net, sim.WMpFull)

	fmt.Println("== timing: module 17 at half speed, WRN-40-10, w_mp++ ==")
	fmt.Printf("healthy fleet:          %8.3f ms/iter  %9.0f img/s\n",
		h.IterationSec*1e3, h.ImagesPerSec)
	fmt.Printf("straggler, equal split: %8.3f ms/iter  %9.0f img/s  (%.2fx)\n",
		equal.IterationSec*1e3, equal.ImagesPerSec, equal.IterationSec/h.IterationSec)
	fmt.Printf("straggler, load-aware:  %8.3f ms/iter  %9.0f img/s  (%.2fx)\n",
		aware.IterationSec*1e3, aware.ImagesPerSec, aware.IterationSec/h.IterationSec)

	// The shard math behind the recovery: the straggler's cluster takes a
	// speed-proportional share instead of B/Nc.
	speeds := []float64{1, 1, 0.5, 1}
	fmt.Printf("shares of batch 64 at speeds %v: equal %v, load-aware %v\n\n",
		speeds, comm.EqualShards(64, 4), comm.LoadAwareShards(64, speeds))
}

// trainDemo runs the functional engine through degraded recovery on a
// heterogeneous fleet.
func trainDemo() {
	const (
		batch = 24
		lr    = 1e-4
	)
	params := []conv.Params{
		{In: 3, Out: 4, K: 3, Pad: 1, H: 8, W: 8},
		{In: 4, Out: 2, K: 3, Pad: 1, H: 8, W: 8},
	}
	rng := tensor.NewRNG(53)
	x := tensor.New(batch, 3, 8, 8)
	rng.FillNormal(x, 0, 1)
	target := tensor.New(batch, 2, 8, 8)
	rng.FillNormal(target, 0, 1)

	// A (4,4) grid where cluster 1 runs at half speed: the batch shards
	// 7/3/7/7 instead of 6/6/6/6.
	cfg := mpt.Config{Ng: 4, Nc: 4, Speeds: []float64{1, 0.5, 1, 1}}
	n := check(mpt.NewNet(winograd.F2x2_3x3, params, cfg, tensor.NewRNG(59)))

	fmt.Println("== training: (4,4) grid, cluster 1 at half speed ==")
	for i := 0; i < 3; i++ {
		loss, err := n.TrainStepMSE(x, target, lr)
		check0(err)
		fmt.Printf("step %d: loss %.6f\n", i, loss)
	}
	cp := n.Checkpoint()

	// A module in cluster 3 dies: 15 survivors re-wire to (4,3), the
	// straggler survives, and the batch rebalances onto {1, 0.5, 1}.
	survivorSpeeds := []float64{1, 0.5, 1}
	check0(n.Reconfigure(4, 3))
	moved, err := n.Rebalance(batch, survivorSpeeds)
	check0(err)
	check0(n.Restore(cp))
	fmt.Printf("module lost: regrid to (4,3), rebalance moved %d activation bytes\n", moved)

	recovered := make([]float64, 3)
	for i := range recovered {
		loss, err := n.TrainStepMSE(x, target, lr)
		check0(err)
		recovered[i] = loss
	}

	// Reference: a fault-free network wired at (4,3) with the survivor
	// speeds from the start, restored from the same checkpoint.
	refCfg := mpt.Config{Ng: 4, Nc: 3, Speeds: survivorSpeeds}
	ref := check(mpt.NewNet(winograd.F2x2_3x3, params, refCfg, tensor.NewRNG(999)))
	check0(ref.Restore(cp))
	fmt.Println("post-recovery loss trajectory (recovered vs fault-free, bit-exact):")
	for i := range recovered {
		loss, err := ref.TrainStepMSE(x, target, lr)
		check0(err)
		fmt.Printf("step %d: %.9f vs %.9f  equal=%v\n", i, recovered[i], loss, recovered[i] == loss)
	}
}

func check[T any](v T, err error) T {
	check0(err)
	return v
}

func check0(err error) {
	if err != nil {
		panic(err)
	}
}
