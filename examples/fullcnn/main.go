// Fullcnn simulates whole-CNN training iterations (WRN-40-10, ResNet-34,
// FractalNet) on the 256-worker NDP machine and an 8-GPU DGX-1 baseline —
// the Fig. 17/18 experiments — and shows the per-layer dynamic-clustering
// decisions MPT makes.
package main

import (
	"fmt"

	"mptwino/internal/gpu"
	"mptwino/internal/model"
	"mptwino/internal/sim"
)

func main() {
	s := sim.DefaultSystem()
	g := gpu.DGX1()

	for _, net := range model.AllNetworks() {
		base := sim.SingleWorkerBaseline(net)
		fmt.Printf("=== %s (batch %d, %.1fM params) ===\n",
			net.Name, net.Batch, float64(net.ParamCount())/1e6)

		for _, c := range []sim.SystemConfig{sim.WDp, sim.WMp, sim.WMpFull} {
			r := s.SimulateNetwork(net, c)
			fmt.Printf("  ndp-256 %-7s %9.1f img/s  (%.0fx vs 1 NDP, %.0f W)\n",
				c, r.ImagesPerSec, sim.Speedup(r, base), r.PowerW)
		}
		for _, ng := range []int{1, 8} {
			fmt.Printf("  dgx1-%d GPUs     %9.1f img/s\n", ng, g.ImagesPerSec(net, ng, net.Batch))
		}

		// Dynamic clustering choices per layer (w_mp++): early layers fall
		// back to data parallelism, late layers use 16 groups.
		r := s.SimulateNetwork(net, sim.WMpFull)
		fmt.Println("  dynamic clustering choices:")
		for _, lr := range r.Layers {
			fmt.Printf("    %-10s -> (Ng=%2d, Nc=%3d)\n", lr.Name, lr.Ng, lr.Nc)
		}
		fmt.Println()
	}

	// Fig. 18: let the GPU system pick its best batch size, then compare
	// performance per watt.
	fmt.Println("=== iso-power comparison (Fig. 18) ===")
	for _, net := range model.AllNetworks() {
		batch, gpuIPS := g.BestBatch(net, 8, 4096)
		ndp := s.SimulateNetwork(net, sim.WMpFull)
		fmt.Printf("%-15s gpu best-batch %4d: %8.1f img/s @%4.0f W | ndp-256: %8.1f img/s @%4.0f W | perf/W ratio %.1fx\n",
			net.Name, batch, gpuIPS, g.SystemPowerW(8), ndp.ImagesPerSec, ndp.PowerW,
			(ndp.ImagesPerSec/ndp.PowerW)/(gpuIPS/g.SystemPowerW(8)))
	}
}
